//! Fault-tolerant delta-frame session protocol and deadline-aware
//! graceful degradation.
//!
//! # The protocol
//!
//! Delta frames cross the (possibly faulty, see [`crate::faults`]) link as
//! sequence-numbered, checksummed messages ([`FrameMessage`]): a delta
//! message carries the [`FrameDelta`] parts plus the inserted positions and
//! the [`geometry_digest`] of the frame it reconstructs; a keyframe message
//! carries the full positions. Every message ends in a 64-bit FNV-1a
//! checksum over its bytes, so truncation and bit corruption are detected
//! at decode time, and the geometry digest is re-checked after
//! reconstruction, so a message that decodes but reconstructs the wrong
//! frame (or applies against the wrong base) never reaches the SR engine.
//!
//! # The recovery ladder
//!
//! [`ResilientSession::advance`] climbs three rungs, cheapest first:
//!
//! 1. **Splice** — after a gap (dropped or mangled frames), the next
//!    request asks the server for one delta covering the whole gap, which
//!    the server builds with [`FrameDelta::compose`]. The session's
//!    incremental caches stay warm; only the churn of the spliced delta is
//!    recomputed.
//! 2. **Retransmit** — each request is retried up to
//!    [`RetryPolicy::max_retries`] times with exponential backoff, every
//!    round charged real link time plus the per-request timeout.
//! 3. **Keyframe resync** — when delta recovery keeps failing, the session
//!    requests the full frame, flushes every cross-frame cache
//!    ([`crate::client::SrSession::flush_caches`] — see the cache-flush
//!    invariants in `volut_core::interpolate::temporal`) and recomputes
//!    cold. Cold output depends only on the frame's own bits, so after at
//!    most one keyframe the session's output is bit-identical to a session
//!    that never saw a fault — the property the chaos suite asserts.
//!
//! # Deadline-aware degradation
//!
//! [`DegradationController`] is a five-level state machine (full →
//! skip-refinement → reduced-ratio → interpolate-only → passthrough) with
//! hysteresis: it degrades when the [`SrComputeModel`]-predicted compute
//! time overruns the frame budget for `degrade_after` consecutive frames,
//! and recovers one level only after `recover_after` consecutive frames fit
//! the *higher* level within a safety margin. The streaming simulator
//! consults it per chunk and folds the level's quality factor into QoE, so
//! deadline misses trade off visibly against quality instead of silently
//! stalling playback.
//!
//! [`geometry_digest`]: volut_pointcloud::cloud::geometry_digest
//! [`SrComputeModel`]: crate::client::SrComputeModel

use std::collections::VecDeque;

use crate::chunk::Chunk;
use crate::client::{SrComputeModel, SrSession};
use crate::faults::Transport;
use crate::{Error, Result};
use rand::{Rng, SeedableRng, StdRng};
use serde::{Deserialize, Serialize};
use volut_core::device::DeviceProfile;
use volut_core::pipeline::SrResult;
use volut_pointcloud::cloud::geometry_digest;
use volut_pointcloud::{Color, FrameDelta, Point3, PointCloud};

// ---------------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------------

/// Message kind tag for a full-frame (keyframe) payload.
const KIND_KEYFRAME: u8 = 0;
/// Message kind tag for a delta payload.
const KIND_DELTA: u8 = 1;

/// 64-bit FNV-1a over a byte slice — the payload checksum. Not
/// cryptographic: the adversary here is the fault injector's random bit
/// flips and truncations, not a forger.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_point(out: &mut Vec<u8>, p: Point3) {
    put_u32(out, p.x.to_bits());
    put_u32(out, p.y.to_bits());
    put_u32(out, p.z.to_bits());
}

/// Cursor-style reader over a received byte slice.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn u8(&mut self) -> Option<u8> {
        let v = *self.bytes.get(self.pos)?;
        self.pos += 1;
        Some(v)
    }

    fn u32(&mut self) -> Option<u32> {
        let s = self.bytes.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(s.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        let s = self.bytes.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(s.try_into().unwrap()))
    }

    fn point(&mut self) -> Option<Point3> {
        Some(Point3::new(
            f32::from_bits(self.u32()?),
            f32::from_bits(self.u32()?),
            f32::from_bits(self.u32()?),
        ))
    }

    fn color(&mut self) -> Option<Color> {
        Some(Color::new(self.u8()?, self.u8()?, self.u8()?))
    }
}

fn put_colors(out: &mut Vec<u8>, colors: &Option<Vec<Color>>) {
    match colors {
        Some(cs) => {
            out.push(1);
            for c in cs {
                out.extend_from_slice(&[c.r, c.g, c.b]);
            }
        }
        None => out.push(0),
    }
}

/// Reads the optional color block that follows `count` points.
fn read_colors(
    r: &mut Reader<'_>,
    count: usize,
) -> std::result::Result<Option<Vec<Color>>, DecodeError> {
    match r.u8().ok_or(DecodeError::Malformed)? {
        0 => Ok(None),
        1 => {
            let mut colors = Vec::with_capacity(count);
            for _ in 0..count {
                colors.push(r.color().ok_or(DecodeError::Malformed)?);
            }
            Ok(Some(colors))
        }
        _ => Err(DecodeError::Malformed),
    }
}

/// Builds a point cloud from reconstructed positions and optional colors
/// (lengths validated by the caller before reconstruction).
fn build_cloud(positions: Vec<Point3>, colors: Option<Vec<Color>>) -> PointCloud {
    match colors {
        Some(c) => PointCloud::from_positions_and_colors(positions, c)
            .expect("color count validated before reconstruction"),
        None => PointCloud::from_positions(positions),
    }
}

/// Why a received payload was rejected before reaching the SR engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The payload is shorter than the fixed header + checksum.
    TooShort,
    /// The trailing FNV-1a checksum does not match the payload bytes
    /// (truncation or bit corruption in transit).
    BadChecksum,
    /// The payload decodes but its structure is inconsistent (bad kind
    /// tag, counts that do not add up, a delta that fails
    /// [`FrameDelta::from_parts`]).
    Malformed,
}

/// Body of one protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum MessageBody {
    /// A full frame: positions plus their [`geometry_digest`].
    Keyframe {
        /// The frame's positions.
        positions: Vec<Point3>,
        /// Per-point colors, when the stream carries them.
        colors: Option<Vec<Color>>,
        /// Digest of `positions` (re-checked after decode).
        digest: u64,
    },
    /// A delta from the frame at `base_seq` to this message's sequence
    /// number. Survivor attributes ride the survivor map on the receiver;
    /// only the inserted points travel.
    Delta {
        /// Sequence number of the frame this delta applies to.
        base_seq: u64,
        /// The structural delta (removals, insertions, survivor map).
        delta: FrameDelta,
        /// Positions of the inserted points, in `delta.inserted()` order.
        inserted: Vec<Point3>,
        /// Colors of the inserted points, when the stream carries colors.
        inserted_colors: Option<Vec<Color>>,
        /// Digest of the *reconstructed* frame's positions.
        digest: u64,
    },
}

/// One sequence-numbered protocol message.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameMessage {
    /// Sequence number (frame index) this message produces.
    pub seq: u64,
    /// Keyframe or delta body.
    pub body: MessageBody,
}

impl FrameMessage {
    /// Encodes the message with its trailing checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, self.seq);
        match &self.body {
            MessageBody::Keyframe {
                positions,
                colors,
                digest,
            } => {
                out.push(KIND_KEYFRAME);
                put_u32(&mut out, positions.len() as u32);
                for &p in positions {
                    put_point(&mut out, p);
                }
                put_colors(&mut out, colors);
                put_u64(&mut out, *digest);
            }
            MessageBody::Delta {
                base_seq,
                delta,
                inserted,
                inserted_colors,
                digest,
            } => {
                out.push(KIND_DELTA);
                put_u64(&mut out, *base_seq);
                put_u32(&mut out, delta.old_len() as u32);
                put_u32(&mut out, delta.new_len() as u32);
                put_u32(&mut out, delta.removed().len() as u32);
                put_u32(&mut out, delta.inserted().len() as u32);
                for &i in delta.removed() {
                    put_u32(&mut out, i);
                }
                for &i in delta.inserted() {
                    put_u32(&mut out, i);
                }
                for &p in inserted {
                    put_point(&mut out, p);
                }
                put_colors(&mut out, inserted_colors);
                put_u64(&mut out, *digest);
            }
        }
        let checksum = fnv1a64(&out);
        put_u64(&mut out, checksum);
        out
    }

    /// Decodes and integrity-checks a received payload.
    ///
    /// # Errors
    /// [`DecodeError::TooShort`] / [`DecodeError::BadChecksum`] for
    /// payloads mangled in transit, [`DecodeError::Malformed`] for
    /// structurally inconsistent ones.
    pub fn decode(bytes: &[u8]) -> std::result::Result<FrameMessage, DecodeError> {
        // seq + kind + checksum is the smallest possible message.
        if bytes.len() < 8 + 1 + 8 {
            return Err(DecodeError::TooShort);
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let claimed = u64::from_le_bytes(tail.try_into().unwrap());
        if fnv1a64(body) != claimed {
            return Err(DecodeError::BadChecksum);
        }
        let mut r = Reader::new(body);
        let seq = r.u64().ok_or(DecodeError::Malformed)?;
        let kind = r.u8().ok_or(DecodeError::Malformed)?;
        let body = match kind {
            KIND_KEYFRAME => {
                let count = r.u32().ok_or(DecodeError::Malformed)? as usize;
                // Bound the allocation by what the payload can hold.
                if body.len() < 13 + count * 12 + 9 {
                    return Err(DecodeError::Malformed);
                }
                let mut positions = Vec::with_capacity(count);
                for _ in 0..count {
                    positions.push(r.point().ok_or(DecodeError::Malformed)?);
                }
                let colors = read_colors(&mut r, count)?;
                let digest = r.u64().ok_or(DecodeError::Malformed)?;
                MessageBody::Keyframe {
                    positions,
                    colors,
                    digest,
                }
            }
            KIND_DELTA => {
                let base_seq = r.u64().ok_or(DecodeError::Malformed)?;
                let old_len = r.u32().ok_or(DecodeError::Malformed)? as usize;
                let new_len = r.u32().ok_or(DecodeError::Malformed)? as usize;
                let removed_len = r.u32().ok_or(DecodeError::Malformed)? as usize;
                let inserted_len = r.u32().ok_or(DecodeError::Malformed)? as usize;
                if body.len() < 33 + (removed_len + inserted_len) * 4 + inserted_len * 12 + 9 {
                    return Err(DecodeError::Malformed);
                }
                let mut removed = Vec::with_capacity(removed_len);
                for _ in 0..removed_len {
                    removed.push(r.u32().ok_or(DecodeError::Malformed)?);
                }
                let mut inserted_ids = Vec::with_capacity(inserted_len);
                for _ in 0..inserted_len {
                    inserted_ids.push(r.u32().ok_or(DecodeError::Malformed)?);
                }
                let mut inserted = Vec::with_capacity(inserted_len);
                for _ in 0..inserted_len {
                    inserted.push(r.point().ok_or(DecodeError::Malformed)?);
                }
                let inserted_colors = read_colors(&mut r, inserted_len)?;
                let digest = r.u64().ok_or(DecodeError::Malformed)?;
                let delta = FrameDelta::from_parts(old_len, new_len, removed, inserted_ids)
                    .ok_or(DecodeError::Malformed)?;
                MessageBody::Delta {
                    base_seq,
                    delta,
                    inserted,
                    inserted_colors,
                    digest,
                }
            }
            _ => return Err(DecodeError::Malformed),
        };
        Ok(FrameMessage { seq, body })
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Bound on the history a [`DeltaServer`] retains. A long-running origin
/// cannot keep every frame forever; once either limit is exceeded the
/// oldest frames (and their deltas) are dropped. Gap requests whose base
/// has fallen out of the window return `None` from
/// [`DeltaServer::delta_message`], which the recovery ladder answers with
/// a keyframe resync — retention never breaks recovery, it only changes
/// which rung serves it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetentionPolicy {
    /// Maximum number of retained frames (at least 1 is always kept).
    pub max_frames: usize,
    /// Maximum retained payload bytes (positions + colors + delta parts).
    pub max_bytes: u64,
}

impl RetentionPolicy {
    /// No bounds: every frame is retained (the pre-retention behavior).
    pub fn unbounded() -> Self {
        Self {
            max_frames: usize::MAX,
            max_bytes: u64::MAX,
        }
    }

    /// Keep at most `n` frames, with no byte bound.
    pub fn last_frames(n: usize) -> Self {
        Self {
            max_frames: n.max(1),
            max_bytes: u64::MAX,
        }
    }
}

impl Default for RetentionPolicy {
    fn default() -> Self {
        Self::unbounded()
    }
}

/// Estimated wire-side bytes of one retained frame (positions + colors).
fn frame_bytes(frame: &PointCloud) -> u64 {
    let n = frame.len() as u64;
    n * 12 + if frame.colors().is_some() { n * 3 } else { 0 }
}

/// Estimated bytes of one retained delta (removal + insertion indices).
fn delta_bytes(delta: &FrameDelta) -> u64 {
    (delta.removed().len() as u64 + delta.inserted().len() as u64) * 4 + 16
}

/// The sender side of the delta-stream protocol: holds a frame sequence and
/// serves keyframes, single-step deltas, and gap-spanning deltas spliced
/// with [`FrameDelta::compose`]. History is bounded by a
/// [`RetentionPolicy`]: frames older than the window are dropped and any
/// delta request based on them falls back to a keyframe.
#[derive(Debug, Clone)]
pub struct DeltaServer {
    frames: VecDeque<PointCloud>,
    /// `deltas[i]`: frame `base_seq + i` → frame `base_seq + i + 1`.
    deltas: VecDeque<FrameDelta>,
    /// Sequence number of the oldest retained frame.
    base_seq: u64,
    retention: RetentionPolicy,
    /// Running estimate of retained payload bytes (frames + deltas).
    retained_bytes: u64,
}

impl DeltaServer {
    /// Builds an unbounded server over a frame sequence, diffing
    /// consecutive frames.
    pub fn new(frames: Vec<PointCloud>) -> Self {
        Self::with_retention(frames, RetentionPolicy::unbounded())
    }

    /// Builds a server over a frame sequence with a retention bound
    /// (enforced immediately, so an over-bound seed sequence is trimmed to
    /// its newest frames).
    pub fn with_retention(frames: Vec<PointCloud>, retention: RetentionPolicy) -> Self {
        let deltas: VecDeque<FrameDelta> = frames
            .windows(2)
            .map(|w| FrameDelta::diff(w[0].positions(), w[1].positions()))
            .collect();
        let retained_bytes = frames.iter().map(frame_bytes).sum::<u64>()
            + deltas.iter().map(delta_bytes).sum::<u64>();
        let mut server = Self {
            frames: frames.into(),
            deltas,
            base_seq: 0,
            retention,
            retained_bytes,
        };
        server.enforce_retention();
        server
    }

    /// Appends the next frame, diffing it against the newest retained one,
    /// then enforces the retention bound.
    pub fn push_frame(&mut self, frame: PointCloud) {
        let delta = self
            .frames
            .back()
            .map(|last| FrameDelta::diff(last.positions(), frame.positions()));
        self.push_frame_inner(frame, delta);
    }

    /// Appends the next frame with a precomputed delta from the current
    /// newest frame (e.g. straight from the capture pipeline), skipping the
    /// diff. The delta is trusted — receivers re-verify every reconstructed
    /// frame against its digest anyway, so a wrong delta is detected at the
    /// edge, not here.
    pub fn push_frame_with_delta(&mut self, frame: PointCloud, delta: FrameDelta) {
        let delta = self.frames.back().map(|_| delta);
        self.push_frame_inner(frame, delta);
    }

    fn push_frame_inner(&mut self, frame: PointCloud, delta: Option<FrameDelta>) {
        if let Some(delta) = delta {
            self.retained_bytes += delta_bytes(&delta);
            self.deltas.push_back(delta);
        }
        self.retained_bytes += frame_bytes(&frame);
        self.frames.push_back(frame);
        self.enforce_retention();
    }

    /// Drops oldest frames until both retention bounds hold (always keeps
    /// at least one frame so the stream head stays servable).
    fn enforce_retention(&mut self) {
        while self.frames.len() > 1
            && (self.frames.len() > self.retention.max_frames
                || self.retained_bytes > self.retention.max_bytes)
        {
            if let Some(frame) = self.frames.pop_front() {
                self.retained_bytes -= frame_bytes(&frame);
            }
            if let Some(delta) = self.deltas.pop_front() {
                self.retained_bytes -= delta_bytes(&delta);
            }
            self.base_seq += 1;
        }
    }

    /// Total frames the stream has produced (retained or dropped): the
    /// next pushed frame gets sequence number `frame_count()`.
    pub fn frame_count(&self) -> usize {
        self.base_seq as usize + self.frames.len()
    }

    /// Sequence number of the oldest frame still retained.
    pub fn base_seq(&self) -> u64 {
        self.base_seq
    }

    /// Number of frames currently retained.
    pub fn retained_frames(&self) -> usize {
        self.frames.len()
    }

    /// Estimated bytes of retained history (frame payloads + delta parts).
    pub fn retained_bytes(&self) -> u64 {
        self.retained_bytes
    }

    /// The true frame at `seq` (ground truth for bit-identity checks).
    /// `None` once it has aged out of the retention window.
    pub fn frame(&self, seq: u64) -> Option<&PointCloud> {
        self.frames.get(seq.checked_sub(self.base_seq)? as usize)
    }

    /// Encodes the keyframe message for `seq`. Returns `None` past the end
    /// of the sequence or behind the retention window.
    pub fn keyframe_message(&self, seq: u64) -> Option<Vec<u8>> {
        let frame = self.frame(seq)?;
        let positions = frame.positions().to_vec();
        let colors = frame.colors().map(<[Color]>::to_vec);
        let digest = geometry_digest(&positions);
        Some(
            FrameMessage {
                seq,
                body: MessageBody::Keyframe {
                    positions,
                    colors,
                    digest,
                },
            }
            .encode(),
        )
    }

    /// Encodes a delta message from `base_seq` to `seq`, splicing the
    /// intermediate single-step deltas with [`FrameDelta::compose`] when
    /// the gap spans more than one frame. Returns `None` when the range is
    /// out of bounds, inverted, or starts before the retention window (the
    /// caller falls back to [`Self::keyframe_message`]).
    pub fn delta_message(&self, base_seq: u64, seq: u64) -> Option<Vec<u8>> {
        let from = base_seq.checked_sub(self.base_seq)? as usize;
        let to = seq.checked_sub(self.base_seq)? as usize;
        if from >= to || to >= self.frames.len() {
            return None;
        }
        let mut delta = self.deltas[from].clone();
        for step in self.deltas.iter().skip(from + 1).take(to - from - 1) {
            delta = delta.compose(step)?;
        }
        let target = self.frames[to].positions();
        let inserted: Vec<Point3> = delta
            .inserted()
            .iter()
            .map(|&i| target[i as usize])
            .collect();
        let inserted_colors = self.frames[to].colors().map(|cs| {
            delta
                .inserted()
                .iter()
                .map(|&i| cs[i as usize])
                .collect::<Vec<Color>>()
        });
        let digest = geometry_digest(target);
        Some(
            FrameMessage {
                seq,
                body: MessageBody::Delta {
                    base_seq,
                    delta,
                    inserted,
                    inserted_colors,
                    digest,
                },
            }
            .encode(),
        )
    }
}

// ---------------------------------------------------------------------------
// Robustness telemetry
// ---------------------------------------------------------------------------

/// Robustness telemetry of a resilient session (and, for the last two
/// fields, of the simulator's degradation controller).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RobustnessStats {
    /// Frames successfully delivered to the SR engine.
    pub frames: u64,
    /// Frames that needed no recovery at all.
    pub clean_frames: u64,
    /// Request rounds that produced no usable message (drop or mangled
    /// beyond decoding) — the receiver-side view of link loss.
    pub drops_seen: u64,
    /// Payloads rejected by checksum/digest/structure checks.
    pub integrity_failures: u64,
    /// Stale or duplicate arrivals ignored (old sequence numbers).
    pub stale_ignored: u64,
    /// Retransmission rounds performed (backoff included).
    pub retries: u64,
    /// Frames recovered by splicing a gap delta ([`FrameDelta::compose`]).
    pub recovered_compose: u64,
    /// Frames recovered by plain retransmission of the same request.
    pub recovered_retransmit: u64,
    /// Frames recovered by a full keyframe resync (cache flush + cold
    /// recompute).
    pub recovered_keyframe: u64,
    /// Externally declared deltas the SR engine rejected on verification —
    /// attempted cache poisonings that were detected (never served).
    pub poisonings_detected: u64,
    /// Chunks/frames whose compute overran their deadline budget.
    pub deadline_misses: u64,
    /// Chunks/frames spent at each degradation level, `Full` first.
    pub degradation_residency: [u64; 5],
}

impl RobustnessStats {
    /// Deadline misses as a fraction of the frames/chunks processed.
    pub fn deadline_miss_rate(&self) -> f64 {
        let total: u64 = self.degradation_residency.iter().sum();
        let denom = if total > 0 { total } else { self.frames };
        if denom == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / denom as f64
        }
    }

    /// Total recoveries across all kinds.
    pub fn recoveries(&self) -> u64 {
        self.recovered_compose + self.recovered_retransmit + self.recovered_keyframe
    }

    /// Adds `current - prev` into `self`, field-wise — the per-tick rollup
    /// primitive the multi-tenant server uses to merge each tenant's
    /// monotonically growing counters into the aggregate without keeping
    /// the frame path locked or rescanning history.
    pub fn add_delta(&mut self, current: &Self, prev: &Self) {
        self.frames += current.frames - prev.frames;
        self.clean_frames += current.clean_frames - prev.clean_frames;
        self.drops_seen += current.drops_seen - prev.drops_seen;
        self.integrity_failures += current.integrity_failures - prev.integrity_failures;
        self.stale_ignored += current.stale_ignored - prev.stale_ignored;
        self.retries += current.retries - prev.retries;
        self.recovered_compose += current.recovered_compose - prev.recovered_compose;
        self.recovered_retransmit += current.recovered_retransmit - prev.recovered_retransmit;
        self.recovered_keyframe += current.recovered_keyframe - prev.recovered_keyframe;
        self.poisonings_detected += current.poisonings_detected - prev.poisonings_detected;
        self.deadline_misses += current.deadline_misses - prev.deadline_misses;
        for (acc, (cur, old)) in self.degradation_residency.iter_mut().zip(
            current
                .degradation_residency
                .iter()
                .zip(prev.degradation_residency.iter()),
        ) {
            *acc += cur - old;
        }
    }
}

// ---------------------------------------------------------------------------
// Resilient session
// ---------------------------------------------------------------------------

/// Retry/backoff/timeout policy of the resilient session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Retransmission rounds per rung of the recovery ladder.
    pub max_retries: u32,
    /// Backoff before retry `r` is `base_backoff_s * 2^r` seconds.
    pub base_backoff_s: f64,
    /// Time charged for a request round that produces no usable reply.
    pub timeout_s: f64,
    /// Backoff jitter fraction in `[0, 1]`: each backoff is scaled by a
    /// factor drawn uniformly from `[1 - jitter, 1 + jitter]` out of the
    /// receiver's seeded RNG. Zero (the default) keeps the classic
    /// deterministic schedule; a shared-burst deployment sets it non-zero
    /// so co-tenant retransmits de-correlate instead of re-colliding in
    /// lockstep — still reproducible, because the draw is seeded.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            base_backoff_s: 0.02,
            timeout_s: 0.15,
            jitter: 0.0,
        }
    }
}

/// How a recovered frame made it through the ladder — drives the
/// per-kind recovery counters when the frame is committed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryKind {
    /// First-try single-step delta (or the very first keyframe of a cold
    /// start): no recovery happened.
    Clean,
    /// A gap-spanning delta spliced with [`FrameDelta::compose`].
    Compose,
    /// A plain retransmission of the same request succeeded.
    Retransmit,
    /// Full keyframe resync: the caller must flush caches and recompute
    /// cold.
    Keyframe,
}

/// One frame recovered off the wire by [`ResilientReceiver::recover`],
/// verified (checksum + digest) but not yet upsampled or committed. When
/// `delta` is `Some` the caller may feed it to the SR engine's incremental
/// path; when `None` (keyframe / cold start) the caller must flush
/// cross-frame caches and recompute cold.
#[derive(Debug, Clone)]
pub struct RecoveredFrame {
    /// Reconstructed, digest-verified positions of the frame.
    pub positions: Vec<Point3>,
    /// Reconstructed colors, when the stream carries them.
    pub colors: Option<Vec<Color>>,
    /// The structural delta from the receiver's previous frame, for the
    /// incremental SR path; `None` means cold recompute.
    pub delta: Option<FrameDelta>,
    /// Which rung of the ladder produced the frame.
    pub kind: RecoveryKind,
}

impl RecoveredFrame {
    /// Builds the point cloud for the SR engine.
    pub fn cloud(&self) -> PointCloud {
        build_cloud(self.positions.clone(), self.colors.clone())
    }
}

/// Receiver-side protocol state of the resilient delta stream, decoupled
/// from the SR engine so a server tenant (which owns its own
/// [`SrSession`] and degradation machinery) can run the same recovery
/// ladder as the standalone [`ResilientSession`]. Owns the last good
/// sequence number, the reconstructed current frame (the delta base), the
/// session clock (link time + backoff + timeouts), the seeded backoff
/// jitter RNG, and the robustness counters.
///
/// The flow is recover → upsample → commit: [`Self::recover`] climbs the
/// ladder and returns a verified [`RecoveredFrame`]; the caller upsamples
/// it (flushing caches first when `delta` is `None`); on success the
/// caller hands the frame back to [`Self::commit`], which stores the new
/// delta base and counts the recovery. An upsample error leaves the
/// receiver uncommitted, exactly as the pre-split session behaved.
#[derive(Debug, Clone)]
pub struct ResilientReceiver {
    policy: RetryPolicy,
    /// Sequence number of the last frame delivered to the SR engine.
    last_seq: Option<u64>,
    /// Reconstructed positions of that frame (the delta base).
    positions: Vec<Point3>,
    /// Reconstructed colors of that frame, when the stream carries them.
    colors: Option<Vec<Color>>,
    clock_s: f64,
    stats: RobustnessStats,
    /// Seeded RNG for backoff jitter (only consulted when
    /// [`RetryPolicy::jitter`] is non-zero).
    jitter_rng: StdRng,
}

impl ResilientReceiver {
    /// Creates a receiver with the given policy; `seed` drives the backoff
    /// jitter draws (unused while [`RetryPolicy::jitter`] is zero).
    pub fn new(policy: RetryPolicy, seed: u64) -> Self {
        Self {
            policy,
            last_seq: None,
            positions: Vec::new(),
            colors: None,
            clock_s: 0.0,
            stats: RobustnessStats::default(),
            jitter_rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The retry policy in force.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Robustness counters so far.
    pub fn stats(&self) -> RobustnessStats {
        self.stats
    }

    /// The session clock: link time + backoff + timeouts accrued so far.
    pub fn clock_s(&self) -> f64 {
        self.clock_s
    }

    /// Sequence number of the last committed frame.
    pub fn last_seq(&self) -> Option<u64> {
        self.last_seq
    }

    /// Fetches frame `seq` over the (faulty) link, climbing the recovery
    /// ladder as needed (see the module docs), and returns the verified
    /// frame for the caller to upsample and [`commit`](Self::commit).
    ///
    /// # Errors
    /// [`Error::Transport`] when even the keyframe rung fails after all
    /// retries (the link is effectively down); [`Error::NotFound`] when
    /// the origin no longer serves `seq` at all.
    pub fn recover(
        &mut self,
        server: &DeltaServer,
        link: &mut impl Transport,
        seq: u64,
    ) -> Result<RecoveredFrame> {
        // Rung 1 + 2: delta requests (spliced over any gap), retried with
        // backoff. Skipped when there is no base frame yet.
        let base = self.last_seq.filter(|&b| b < seq);
        if let Some(base_seq) = base {
            for round in 0..=self.policy.max_retries {
                self.backoff(round);
                let Some(request) = server.delta_message(base_seq, seq) else {
                    // Out of retention (or out of range): resync below.
                    break;
                };
                match self.exchange(link, &request, seq) {
                    Some(FrameMessage {
                        body:
                            MessageBody::Delta {
                                base_seq: got_base,
                                delta,
                                inserted,
                                inserted_colors,
                                digest,
                            },
                        ..
                    }) if got_base == base_seq => {
                        let Some(new_positions) = delta.apply(&self.positions, &inserted) else {
                            // Structurally valid but inapplicable: our base
                            // diverged from the server's. Resync below.
                            self.stats.integrity_failures += 1;
                            break;
                        };
                        if geometry_digest(&new_positions) != digest {
                            self.stats.integrity_failures += 1;
                            continue;
                        }
                        // Survivor colors ride the survivor map; a color
                        // presence mismatch means base divergence.
                        let new_colors = match (&self.colors, &inserted_colors) {
                            (Some(base), Some(ins)) => match delta.apply(base, ins) {
                                Some(c) => Some(c),
                                None => {
                                    self.stats.integrity_failures += 1;
                                    break;
                                }
                            },
                            (None, None) => None,
                            _ => {
                                self.stats.integrity_failures += 1;
                                break;
                            }
                        };
                        let kind = if seq - base_seq > 1 {
                            RecoveryKind::Compose
                        } else if round > 0 {
                            RecoveryKind::Retransmit
                        } else {
                            RecoveryKind::Clean
                        };
                        return Ok(RecoveredFrame {
                            positions: new_positions,
                            colors: new_colors,
                            delta: Some(delta),
                            kind,
                        });
                    }
                    Some(_) => {
                        // A message for the right seq but the wrong shape or
                        // base: fall through to the keyframe rung.
                        self.stats.integrity_failures += 1;
                        break;
                    }
                    None => continue,
                }
            }
        }

        // Rung 3: keyframe resync (also the cold start path).
        for round in 0..=self.policy.max_retries {
            self.backoff(round);
            let request = server
                .keyframe_message(seq)
                .ok_or_else(|| Error::NotFound(format!("frame {seq}")))?;
            match self.exchange(link, &request, seq) {
                Some(FrameMessage {
                    body:
                        MessageBody::Keyframe {
                            positions,
                            colors,
                            digest,
                        },
                    ..
                }) => {
                    if geometry_digest(&positions) != digest {
                        self.stats.integrity_failures += 1;
                        continue;
                    }
                    if colors.as_ref().is_some_and(|c| c.len() != positions.len()) {
                        self.stats.integrity_failures += 1;
                        continue;
                    }
                    let cold_start = self.last_seq.is_none() && seq == 0;
                    return Ok(RecoveredFrame {
                        positions,
                        colors,
                        delta: None,
                        kind: if cold_start {
                            RecoveryKind::Clean
                        } else {
                            RecoveryKind::Keyframe
                        },
                    });
                }
                Some(_) => {
                    self.stats.integrity_failures += 1;
                    continue;
                }
                None => continue,
            }
        }
        Err(Error::Transport(format!(
            "frame {seq}: all recovery rungs exhausted after {} retries",
            self.policy.max_retries
        )))
    }

    /// Commits an upsampled frame: stores it as the new delta base,
    /// advances `last_seq`, and counts the recovery kind. Call only after
    /// the SR engine accepted the frame.
    pub fn commit(&mut self, frame: RecoveredFrame, seq: u64) {
        self.positions = frame.positions;
        self.colors = frame.colors;
        self.last_seq = Some(seq);
        self.stats.frames += 1;
        match frame.kind {
            RecoveryKind::Clean => self.stats.clean_frames += 1,
            RecoveryKind::Compose => self.stats.recovered_compose += 1,
            RecoveryKind::Retransmit => self.stats.recovered_retransmit += 1,
            RecoveryKind::Keyframe => self.stats.recovered_keyframe += 1,
        }
    }

    /// Records that the SR engine rejected a committed delta on
    /// verification (attempted cache poisoning, detected and never
    /// served).
    pub fn note_poisoning(&mut self) {
        self.stats.poisonings_detected += 1;
    }

    /// One request/response round: transmits, charges link time, and
    /// returns the first arrival that decodes to the wanted sequence
    /// number. Counts drops, integrity failures and stale arrivals; charges
    /// the timeout when nothing usable arrives.
    fn exchange(
        &mut self,
        link: &mut impl Transport,
        request: &[u8],
        want_seq: u64,
    ) -> Option<FrameMessage> {
        let transfer = link.transmit(request, self.clock_s);
        self.clock_s += transfer.time_s;
        let mut found = None;
        let dropped = transfer.arrivals.is_empty();
        for arrival in &transfer.arrivals {
            match FrameMessage::decode(arrival) {
                Ok(msg) if msg.seq == want_seq && found.is_none() => found = Some(msg),
                Ok(msg) if msg.seq == want_seq => self.stats.stale_ignored += 1,
                Ok(_) => self.stats.stale_ignored += 1,
                Err(_) => self.stats.integrity_failures += 1,
            }
        }
        if found.is_none() {
            if dropped {
                self.stats.drops_seen += 1;
            }
            self.clock_s += self.policy.timeout_s;
        }
        found
    }

    /// Charges the exponential backoff before retry `round` (no charge for
    /// the first attempt) and counts it. With a non-zero
    /// [`RetryPolicy::jitter`] the charge is scaled by a seeded uniform
    /// factor in `[1 - jitter, 1 + jitter]`.
    fn backoff(&mut self, round: u32) {
        if round > 0 {
            let mut step = self.policy.base_backoff_s * f64::from(1u32 << (round - 1).min(16));
            let jitter = self.policy.jitter.clamp(0.0, 1.0);
            if jitter > 0.0 {
                let u: f64 = self.jitter_rng.random();
                step *= 1.0 + jitter * (2.0 * u - 1.0);
            }
            self.clock_s += step;
            self.stats.retries += 1;
        }
    }
}

/// A fault-tolerant wrapper around [`SrSession`] implementing the recovery
/// ladder of the module docs: a [`ResilientReceiver`] for the protocol
/// state plus the SR engine that upsamples what it recovers.
#[derive(Debug)]
pub struct ResilientSession {
    session: SrSession,
    receiver: ResilientReceiver,
}

impl ResilientSession {
    /// Wraps an SR session with the default retry policy.
    pub fn new(session: SrSession) -> Self {
        Self::with_policy(session, RetryPolicy::default())
    }

    /// Wraps an SR session with an explicit retry policy (jitter seed 0).
    pub fn with_policy(session: SrSession, policy: RetryPolicy) -> Self {
        Self::with_policy_seeded(session, policy, 0)
    }

    /// Wraps an SR session with an explicit retry policy and backoff
    /// jitter seed.
    pub fn with_policy_seeded(session: SrSession, policy: RetryPolicy, seed: u64) -> Self {
        Self {
            session,
            receiver: ResilientReceiver::new(policy, seed),
        }
    }

    /// The wrapped SR session.
    pub fn session(&self) -> &SrSession {
        &self.session
    }

    /// Robustness counters so far.
    pub fn stats(&self) -> RobustnessStats {
        self.receiver.stats()
    }

    /// The session clock: link time + backoff + timeouts accrued so far.
    pub fn clock_s(&self) -> f64 {
        self.receiver.clock_s()
    }

    /// Sequence number of the last successfully processed frame.
    pub fn last_seq(&self) -> Option<u64> {
        self.receiver.last_seq()
    }

    /// Fetches frame `seq` over the (faulty) link and upsamples it,
    /// climbing the recovery ladder as needed (see the module docs). On
    /// success the output is bit-identical to what a never-faulted session
    /// would produce for the same frame.
    ///
    /// # Errors
    /// [`Error::Transport`] when even the keyframe rung fails after all
    /// retries (the link is effectively down); SR-engine errors propagate.
    pub fn advance(
        &mut self,
        server: &DeltaServer,
        link: &mut impl Transport,
        seq: u64,
        ratio: f64,
    ) -> Result<SrResult> {
        let recovered = self.receiver.recover(server, link, seq)?;
        let result = match recovered.delta.clone() {
            Some(delta) => {
                // Watch the engine's delta verification: a rejection means
                // the cached state does not match the delta base (attempted
                // cache poisoning or divergence) — it is counted and the
                // caches are flushed so the *next* frame starts clean. The
                // current output is still correct either way: the engine
                // falls back to its own bitwise diff, never to the poisoned
                // mapping.
                let result = self
                    .session
                    .upsample_frame_delta(&recovered.cloud(), ratio, delta)?;
                if self.session.last_delta_error().is_some() {
                    self.receiver.note_poisoning();
                    self.session.flush_caches();
                }
                result
            }
            None => {
                // The cached state may describe a frame that was never
                // really the predecessor: flush everything and recompute
                // cold from this frame's bits alone.
                self.session.flush_caches();
                self.session.upsample_frame(&recovered.cloud(), ratio)?
            }
        };
        self.receiver.commit(recovered, seq);
        Ok(result)
    }
}

// ---------------------------------------------------------------------------
// Deadline-aware degradation
// ---------------------------------------------------------------------------

/// Graceful-degradation level, cheapest-quality-loss first. Each level
/// drops or shrinks pipeline stages; [`DegradationLevel::quality_factor`]
/// is the QoE-side price.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DegradationLevel {
    /// The full pipeline at the requested ratio.
    Full,
    /// Skip the refinement stage (LUT lookup / NN inference).
    SkipRefinement,
    /// Halve the upsampling factor (and still skip refinement).
    ReducedRatio,
    /// Interpolation only: no refinement, no colorization, halved ratio.
    InterpolateOnly,
    /// Pass the received points through untouched (no SR compute at all).
    Passthrough,
}

impl DegradationLevel {
    /// All levels, `Full` first — index order matches
    /// [`RobustnessStats::degradation_residency`].
    pub const ALL: [DegradationLevel; 5] = [
        DegradationLevel::Full,
        DegradationLevel::SkipRefinement,
        DegradationLevel::ReducedRatio,
        DegradationLevel::InterpolateOnly,
        DegradationLevel::Passthrough,
    ];

    /// Residency-array index of this level.
    pub fn index(self) -> usize {
        match self {
            DegradationLevel::Full => 0,
            DegradationLevel::SkipRefinement => 1,
            DegradationLevel::ReducedRatio => 2,
            DegradationLevel::InterpolateOnly => 3,
            DegradationLevel::Passthrough => 4,
        }
    }

    /// The SR ratio actually executed at this level.
    pub fn effective_ratio(self, ratio: f64) -> f64 {
        match self {
            DegradationLevel::Full | DegradationLevel::SkipRefinement => ratio,
            DegradationLevel::ReducedRatio | DegradationLevel::InterpolateOnly => {
                1.0 + (ratio - 1.0).max(0.0) * 0.5
            }
            DegradationLevel::Passthrough => 1.0,
        }
    }

    /// Multiplier applied to displayed quality at this level (the visible
    /// cost of degrading, folded into QoE).
    pub fn quality_factor(self) -> f64 {
        match self {
            DegradationLevel::Full => 1.0,
            DegradationLevel::SkipRefinement => 0.96,
            DegradationLevel::ReducedRatio => 0.85,
            DegradationLevel::InterpolateOnly => 0.65,
            DegradationLevel::Passthrough => 0.35,
        }
    }

    /// The compute model actually executed at this level: dropped stages
    /// are zeroed, so the live [`SrComputeModel`] budget arithmetic stays
    /// exact.
    pub fn adjusted_model(self, model: &SrComputeModel) -> SrComputeModel {
        let mut m = model.clone();
        match self {
            DegradationLevel::Full => {}
            DegradationLevel::SkipRefinement | DegradationLevel::ReducedRatio => {
                m.refine_us_per_output_point = 0.0;
            }
            DegradationLevel::InterpolateOnly => {
                m.refine_us_per_output_point = 0.0;
                m.colorize_us_per_output_point = 0.0;
            }
            DegradationLevel::Passthrough => {
                m.knn_us_per_input_point = 0.0;
                m.interp_us_per_output_point = 0.0;
                m.colorize_us_per_output_point = 0.0;
                m.refine_us_per_output_point = 0.0;
            }
        }
        m
    }

    /// Device-time (seconds) for one chunk at this level — the level-aware
    /// counterpart of [`SrComputeModel::chunk_time_on_device`].
    #[allow(clippy::too_many_arguments)]
    pub fn chunk_time_on_device(
        self,
        model: &SrComputeModel,
        chunk: &Chunk,
        fetch_density: f64,
        sr_ratio: f64,
        device: &DeviceProfile,
        nn_inference: bool,
    ) -> f64 {
        if self == DegradationLevel::Passthrough {
            return 0.0;
        }
        self.adjusted_model(model).chunk_time_on_device(
            chunk,
            fetch_density,
            self.effective_ratio(sr_ratio),
            device,
            nn_inference,
        )
    }
}

/// Hysteresis parameters of the [`DegradationController`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradationConfig {
    /// Fraction of each chunk's playback duration available as compute
    /// budget (1.0 = real-time line rate).
    pub compute_budget_fraction: f64,
    /// Consecutive over-budget predictions before degrading.
    pub degrade_after: u32,
    /// Consecutive with-margin chunks before recovering one level.
    pub recover_after: u32,
    /// Recovery requires the *higher* level's predicted time to fit within
    /// this fraction of the budget (the hysteresis gap).
    pub recover_margin: f64,
}

impl Default for DegradationConfig {
    fn default() -> Self {
        Self {
            compute_budget_fraction: 1.0,
            degrade_after: 1,
            recover_after: 3,
            recover_margin: 0.7,
        }
    }
}

/// Deadline-aware degradation state machine: full → skip-refinement →
/// reduced-ratio → interpolate-only → passthrough, with hysteresis (see
/// the module docs and [`DegradationConfig`]).
#[derive(Debug, Clone)]
pub struct DegradationController {
    config: DegradationConfig,
    level: DegradationLevel,
    over_streak: u32,
    headroom_streak: u32,
    residency: [u64; 5],
    misses: u64,
}

impl DegradationController {
    /// Creates a controller starting at [`DegradationLevel::Full`].
    pub fn new(config: DegradationConfig) -> Self {
        Self {
            config,
            level: DegradationLevel::Full,
            over_streak: 0,
            headroom_streak: 0,
            residency: [0; 5],
            misses: 0,
        }
    }

    /// The current level.
    pub fn level(&self) -> DegradationLevel {
        self.level
    }

    /// The compute budget for a chunk of the given playback duration.
    pub fn budget_s(&self, chunk_duration_s: f64) -> f64 {
        chunk_duration_s * self.config.compute_budget_fraction
    }

    /// Chooses the level for the next chunk/frame. `predict` maps a level
    /// to its predicted compute time (typically through
    /// [`DegradationLevel::chunk_time_on_device`] with the live model).
    /// Degrades after `degrade_after` consecutive over-budget predictions
    /// (stepping down as far as needed to fit); recovers one level after
    /// `recover_after` consecutive chunks in which the higher level fits
    /// within `recover_margin` of the budget. Records residency.
    pub fn plan(
        &mut self,
        predict: impl Fn(DegradationLevel) -> f64,
        budget_s: f64,
    ) -> DegradationLevel {
        // Recovery probe: would one level up fit, with margin?
        if self.level != DegradationLevel::Full {
            let up = DegradationLevel::ALL[self.level.index() - 1];
            if predict(up) <= self.config.recover_margin * budget_s {
                self.headroom_streak += 1;
                if self.headroom_streak >= self.config.recover_after {
                    self.level = up;
                    self.headroom_streak = 0;
                }
            } else {
                self.headroom_streak = 0;
            }
        }
        // Degradation: step down once the over-budget streak is long enough.
        if predict(self.level) > budget_s {
            self.over_streak += 1;
            if self.over_streak >= self.config.degrade_after {
                while predict(self.level) > budget_s && self.level != DegradationLevel::Passthrough
                {
                    self.level = DegradationLevel::ALL[self.level.index() + 1];
                }
                self.over_streak = 0;
                self.headroom_streak = 0;
            }
        } else {
            self.over_streak = 0;
        }
        self.residency[self.level.index()] += 1;
        self.level
    }

    /// Server-side overload escalation: forces the level at least down to
    /// `floor`, re-attributing the residency grain [`Self::plan`] recorded
    /// for the current frame and resetting both hysteresis streaks (the
    /// escalation is an external decision, not evidence about this
    /// session's own budget fit).
    pub fn escalate_to(&mut self, floor: DegradationLevel) {
        if floor.index() > self.level.index() {
            self.residency[self.level.index()] -= 1;
            self.residency[floor.index()] += 1;
            self.level = floor;
            self.over_streak = 0;
            self.headroom_streak = 0;
        }
    }

    /// Records the realized compute time against the budget.
    pub fn observe(&mut self, actual_s: f64, budget_s: f64) {
        if actual_s > budget_s {
            self.misses += 1;
        }
    }

    /// Chunks/frames spent at each level, `Full` first.
    pub fn residency(&self) -> [u64; 5] {
        self.residency
    }

    /// Deadline misses recorded by [`Self::observe`].
    pub fn deadline_misses(&self) -> u64 {
        self.misses
    }

    /// Folds this controller's counters into a [`RobustnessStats`].
    pub fn fill_stats(&self, stats: &mut RobustnessStats) {
        stats.deadline_misses = self.misses;
        stats.degradation_residency = self.residency;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultConfig, FaultyLink};
    use crate::link::SimulatedLink;
    use crate::trace::NetworkTrace;
    use volut_core::refine::IdentityRefiner;
    use volut_core::{SrConfig, SrPipeline};
    use volut_pointcloud::synthetic::{self, DeltaStreamConfig};

    fn frames(n_points: usize, frames: usize, churn: f64, seed: u64) -> Vec<PointCloud> {
        let base = synthetic::humanoid(n_points, 0.4, seed);
        synthetic::delta_frame_sequence(
            &base,
            frames,
            DeltaStreamConfig {
                churn,
                drift: 0.04,
                jitter: 0.008,
                seed,
            },
        )
    }

    fn make_session() -> SrSession {
        SrSession::new(SrPipeline::new(
            SrConfig::default(),
            Box::new(IdentityRefiner),
        ))
    }

    #[test]
    fn messages_roundtrip() {
        let f = frames(300, 3, 0.2, 5);
        let server = DeltaServer::new(f.clone());
        let key = server.keyframe_message(0).unwrap();
        let msg = FrameMessage::decode(&key).unwrap();
        assert_eq!(msg.seq, 0);
        match msg.body {
            MessageBody::Keyframe {
                positions,
                colors,
                digest,
            } => {
                assert_eq!(positions, f[0].positions());
                assert_eq!(colors.as_deref(), f[0].colors());
                assert_eq!(digest, geometry_digest(f[0].positions()));
            }
            _ => panic!("expected keyframe"),
        }
        let del = server.delta_message(0, 2).unwrap();
        let msg = FrameMessage::decode(&del).unwrap();
        assert_eq!(msg.seq, 2);
        match msg.body {
            MessageBody::Delta {
                base_seq,
                delta,
                inserted,
                inserted_colors,
                digest,
            } => {
                assert_eq!(base_seq, 0);
                let rebuilt = delta.apply(f[0].positions(), &inserted).unwrap();
                assert_eq!(rebuilt, f[2].positions());
                let colors = delta
                    .apply(f[0].colors().unwrap(), &inserted_colors.unwrap())
                    .unwrap();
                assert_eq!(colors, f[2].colors().unwrap());
                assert_eq!(digest, geometry_digest(f[2].positions()));
            }
            _ => panic!("expected delta"),
        }
    }

    #[test]
    fn decode_rejects_mangled_payloads() {
        let f = frames(100, 2, 0.1, 9);
        let server = DeltaServer::new(f);
        let msg = server.delta_message(0, 1).unwrap();
        assert!(FrameMessage::decode(&msg).is_ok());
        // Truncation at every prefix length must never decode to Ok with
        // the original content (checksum coverage).
        for cut in [0, 5, 16, msg.len() / 2, msg.len() - 1] {
            match FrameMessage::decode(&msg[..cut]) {
                Err(_) => {}
                Ok(_) => panic!("truncated payload at {cut} decoded"),
            }
        }
        // Any single bit flip is caught.
        for bit in [0usize, 65, 8 * msg.len() - 1] {
            let mut bad = msg.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            assert_eq!(
                FrameMessage::decode(&bad),
                Err(DecodeError::BadChecksum),
                "bit {bit}"
            );
        }
        assert_eq!(FrameMessage::decode(&[1, 2, 3]), Err(DecodeError::TooShort));
    }

    #[test]
    fn clean_link_session_matches_plain_session_bitwise() {
        let f = frames(800, 6, 0.12, 21);
        let server = DeltaServer::new(f.clone());
        let trace = NetworkTrace::stable(80.0, 120.0);
        let mut link = FaultyLink::new(SimulatedLink::new(&trace), FaultConfig::lossless(), 1);
        let mut resilient = ResilientSession::new(make_session());
        let mut plain = make_session();
        for (i, frame) in f.iter().enumerate() {
            let a = resilient
                .advance(&server, &mut link, i as u64, 2.0)
                .unwrap();
            let b = plain.upsample_frame(frame, 2.0).unwrap();
            assert_eq!(a.cloud, b.cloud, "frame {i}");
        }
        let stats = resilient.stats();
        assert_eq!(stats.frames, 6);
        assert_eq!(stats.clean_frames, 6);
        assert_eq!(stats.recoveries(), 0);
        assert_eq!(stats.poisonings_detected, 0);
        assert!(resilient.clock_s() > 0.0);
    }

    #[test]
    fn dropped_deltas_recover_via_compose_and_stay_bit_identical() {
        let f = frames(600, 8, 0.1, 33);
        let server = DeltaServer::new(f.clone());
        let trace = NetworkTrace::stable(80.0, 120.0);
        let mut link = FaultyLink::new(SimulatedLink::new(&trace), FaultConfig::lossless(), 1);
        let mut resilient = ResilientSession::new(make_session());
        let mut clean = make_session();
        // Frames 0..3 delivered; frames 4 and 5 never requested (viewer
        // skipped ahead / chunks lost wholesale); frame 6 must splice 3→6.
        for i in 0..4u64 {
            resilient.advance(&server, &mut link, i, 2.0).unwrap();
        }
        for frame in &f[..6] {
            clean.upsample_frame(frame, 2.0).unwrap();
        }
        let a = resilient.advance(&server, &mut link, 6, 2.0).unwrap();
        let b = clean.upsample_frame(&f[6], 2.0).unwrap();
        assert_eq!(a.cloud, b.cloud, "spliced recovery must be bit-identical");
        let stats = resilient.stats();
        assert_eq!(stats.recovered_compose, 1, "{stats:?}");
        assert_eq!(stats.poisonings_detected, 0, "{stats:?}");
    }

    #[test]
    fn lossy_session_recovers_and_converges_to_clean_output() {
        let f = frames(500, 10, 0.1, 41);
        let server = DeltaServer::new(f.clone());
        let trace = NetworkTrace::stable(60.0, 300.0);
        let mut link = FaultyLink::new(
            SimulatedLink::new(&trace),
            FaultConfig::chaos(0.25),
            0xC0FFEE,
        );
        // Chaos at 25% with 4-frame bursts can blank several consecutive
        // rounds; give the ladder enough retransmissions to outlast them.
        let mut resilient = ResilientSession::with_policy(
            make_session(),
            RetryPolicy {
                max_retries: 8,
                ..RetryPolicy::default()
            },
        );
        let mut clean = make_session();
        for (i, frame) in f.iter().enumerate() {
            let a = resilient
                .advance(&server, &mut link, i as u64, 2.0)
                .unwrap();
            let b = clean.upsample_frame(frame, 2.0).unwrap();
            assert_eq!(a.cloud, b.cloud, "frame {i} diverged under chaos");
        }
        let stats = resilient.stats();
        assert_eq!(stats.frames, 10);
        assert!(
            stats.drops_seen + stats.integrity_failures > 0,
            "chaos at 25% should have injected something: {stats:?}"
        );
        assert!(stats.recoveries() > 0, "{stats:?}");
    }

    #[test]
    fn retention_byte_cap_bounds_a_long_session() {
        let f = frames(150, 40, 0.15, 17);
        let cap = 4 * frame_bytes(&f[0]);
        let mut server = DeltaServer::with_retention(
            f[..1].to_vec(),
            RetentionPolicy {
                max_frames: usize::MAX,
                max_bytes: cap,
            },
        );
        for frame in &f[1..] {
            server.push_frame(frame.clone());
            // The cap holds throughout the session, not just at the end.
            assert!(
                server.retained_bytes() <= cap || server.retained_frames() == 1,
                "retained {} bytes over cap {cap}",
                server.retained_bytes()
            );
        }
        assert_eq!(server.frame_count(), 40, "dropped frames still count");
        assert!(server.base_seq() > 0, "cap never evicted anything");
        assert!(server.retained_frames() < 40);
        // Evicted frames are gone; the head is still fully servable.
        assert!(server.frame(0).is_none());
        let head = server.frame_count() as u64 - 1;
        assert!(server.frame(head).is_some());
        assert!(server.keyframe_message(head).is_some());
        // A gap request based before the window refuses (keyframe fallback);
        // one inside the window still splices.
        assert!(server.delta_message(0, head).is_none());
        assert!(server.delta_message(server.base_seq(), head).is_some());
    }

    #[test]
    fn beyond_window_gap_recovers_via_keyframe_bit_identically() {
        let f = frames(150, 12, 0.1, 23);
        let mut server =
            DeltaServer::with_retention(f[..3].to_vec(), RetentionPolicy::last_frames(3));
        let trace = NetworkTrace::stable(80.0, 120.0);
        let mut link = FaultyLink::new(SimulatedLink::new(&trace), FaultConfig::lossless(), 1);
        let mut resilient = ResilientSession::new(make_session());
        for i in 0..3u64 {
            resilient.advance(&server, &mut link, i, 2.0).unwrap();
        }
        for frame in &f[3..] {
            server.push_frame(frame.clone());
        }
        assert!(server.base_seq() > 2, "old delta base must have aged out");
        // The session's base (frame 2) fell out of the window: the delta
        // rung refuses and the ladder resyncs with a keyframe, whose cold
        // output must match a never-faulted cold session bit for bit.
        let head = server.frame_count() as u64 - 1;
        let a = resilient.advance(&server, &mut link, head, 2.0).unwrap();
        let b = make_session()
            .upsample_frame(&f[head as usize], 2.0)
            .unwrap();
        assert_eq!(a.cloud, b.cloud);
        assert_eq!(resilient.stats().recovered_keyframe, 1);
    }

    #[test]
    fn jittered_backoff_is_reproducible_and_stays_in_bounds() {
        let f = frames(100, 2, 0.1, 3);
        let server = DeltaServer::new(f);
        let trace = NetworkTrace::stable(50.0, 60.0);
        let all_drops = FaultConfig {
            drop: 1.0,
            ..FaultConfig::default()
        };
        // Every request is dropped, so the receiver walks the whole ladder
        // and its final clock is exactly the link + timeout + backoff sum.
        let run = |jitter: f64, seed: u64| {
            let policy = RetryPolicy {
                max_retries: 4,
                jitter,
                ..RetryPolicy::default()
            };
            let mut link = FaultyLink::new(SimulatedLink::new(&trace), all_drops.clone(), 1);
            let mut rx = ResilientReceiver::new(policy, seed);
            assert!(matches!(
                rx.recover(&server, &mut link, 0),
                Err(Error::Transport(_))
            ));
            assert_eq!(rx.stats().retries, 4);
            rx.clock_s()
        };
        let nominal = run(0.0, 42);
        let jittered = run(0.5, 42);
        assert_eq!(jittered, run(0.5, 42), "same seed, same schedule");
        assert_ne!(jittered, run(0.5, 43), "different seeds de-correlate");
        assert_ne!(jittered, nominal);
        // The jittered schedule stays within ±jitter of the nominal
        // backoff sum: base * (1 + 2 + 4 + 8) scaled by at most 0.5.
        let backoff_sum = RetryPolicy::default().base_backoff_s * 15.0;
        assert!(
            (jittered - nominal).abs() <= 0.5 * backoff_sum + 1e-9,
            "jittered {jittered} vs nominal {nominal}"
        );
    }

    #[test]
    fn degradation_controller_hysteresis() {
        let mut ctl = DegradationController::new(DegradationConfig {
            compute_budget_fraction: 1.0,
            degrade_after: 2,
            recover_after: 2,
            recover_margin: 0.7,
        });
        // Cost table: Full takes 2.0 s, each level down halves it.
        let cost = |l: DegradationLevel| 2.0 / (1u64 << l.index()) as f64;
        // Budget 1.0: Full (2.0) is over budget, but hysteresis holds the
        // first chunk at Full.
        assert_eq!(ctl.plan(cost, 1.0), DegradationLevel::Full);
        // Second over-budget chunk: degrade to the first level that fits
        // (SkipRefinement at 1.0 is not < budget... it's exactly 1.0, fits).
        assert_eq!(ctl.plan(cost, 1.0), DegradationLevel::SkipRefinement);
        // Recovery: budget rises to 4.0; Full (2.0) fits within 0.7*4.0,
        // but only after two consecutive headroom chunks.
        assert_eq!(ctl.plan(cost, 4.0), DegradationLevel::SkipRefinement);
        assert_eq!(ctl.plan(cost, 4.0), DegradationLevel::Full);
        assert_eq!(ctl.residency(), [2, 2, 0, 0, 0]);
        // Deadline accounting.
        ctl.observe(2.0, 1.0);
        ctl.observe(0.5, 1.0);
        assert_eq!(ctl.deadline_misses(), 1);
        let mut stats = RobustnessStats::default();
        ctl.fill_stats(&mut stats);
        assert_eq!(stats.deadline_misses, 1);
        assert!((stats.deadline_miss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn degradation_levels_shrink_cost_and_quality_monotonically() {
        let model = SrComputeModel::volut_lut();
        let chunk = crate::chunk::chunk_video(&crate::video::VideoMeta::long_dress(), 1.0)[0];
        let device = DeviceProfile::orange_pi();
        let mut prev_cost = f64::INFINITY;
        let mut prev_quality = f64::INFINITY;
        for level in DegradationLevel::ALL {
            let cost = level.chunk_time_on_device(&model, &chunk, 0.25, 4.0, &device, false);
            assert!(cost <= prev_cost, "{level:?} cost {cost} > {prev_cost}");
            assert!(level.quality_factor() < prev_quality, "{level:?}");
            prev_cost = cost;
            prev_quality = level.quality_factor();
        }
        assert_eq!(
            DegradationLevel::Passthrough
                .chunk_time_on_device(&model, &chunk, 0.25, 4.0, &device, false),
            0.0
        );
    }
}

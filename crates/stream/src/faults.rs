//! Deterministic fault injection for the simulated delta-stream link.
//!
//! The streaming layer's fast path assumes every delta frame arrives
//! intact, in order and on time; this module supplies the adversary that
//! assumption must survive. [`FaultyLink`] wraps a [`SimulatedLink`] and
//! applies seeded, reproducible transport faults to opaque payloads:
//! drops, duplicates, reorders, truncations and single-bit corruptions,
//! plus bursty loss from a two-state Gilbert–Elliott chain whose
//! transition statistics can be fitted to a bandwidth trace
//! ([`GilbertElliott::from_trace`]) so loss bursts line up with the
//! trace's own bad seconds — the shape real cellular links produce.
//!
//! Determinism is the point: every fault decision comes from one
//! [`StdRng`] seeded at construction, so a failing chaos schedule is
//! replayable bit-for-bit from its seed. The injector mutates *payload
//! bytes only* — it never parses them — which keeps it honest as a
//! transport adversary: whatever integrity the session protocol claims
//! (sequence numbers, checksums, digests in
//! [`crate::resilience`]) must be earned end-to-end.

use std::sync::Arc;

use crate::link::SimulatedLink;
use crate::trace::NetworkTrace;
use rand::{Rng, SeedableRng, StdRng};
use serde::{Deserialize, Serialize};

/// The kinds of transport faults the injector can apply to one payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The payload never arrives (the receiver sees a timeout).
    Drop,
    /// The payload arrives twice.
    Duplicate,
    /// The payload is held back and delivered after the next one.
    Reorder,
    /// The payload arrives cut short at a random byte offset.
    Truncate,
    /// The payload arrives with one random bit flipped.
    Corrupt,
}

/// Two-state Gilbert–Elliott burst-loss chain: a `good` state with rare
/// loss and a `bad` state with heavy loss, with geometric dwell times in
/// each. This is the standard model for the bursty (not independent)
/// losses cellular links produce; [`GilbertElliott::from_trace`] fits the
/// dwell statistics to a bandwidth trace so the chain's bad state tracks
/// the trace's own outage seconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GilbertElliott {
    /// Per-message probability of moving good → bad.
    pub p_good_to_bad: f64,
    /// Per-message probability of moving bad → good.
    pub p_bad_to_good: f64,
    /// Loss probability while in the good state.
    pub loss_good: f64,
    /// Loss probability while in the bad state.
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// A chain with the given *mean* loss rate and a mean burst length of
    /// `burst_len` consecutive messages: `loss_bad` is set to 1 inside
    /// bursts, `loss_good` to 0, and the transition probabilities are
    /// solved from the stationary distribution (`π_bad = mean_loss`).
    pub fn bursty(mean_loss: f64, burst_len: f64) -> Self {
        let mean_loss = mean_loss.clamp(0.0, 0.9);
        let p_bad_to_good = 1.0 / burst_len.max(1.0);
        // π_bad = p_g2b / (p_g2b + p_b2g) = mean_loss (loss_bad = 1).
        let p_good_to_bad = if mean_loss >= 1.0 {
            1.0
        } else {
            p_bad_to_good * mean_loss / (1.0 - mean_loss)
        };
        Self {
            p_good_to_bad: p_good_to_bad.clamp(0.0, 1.0),
            p_bad_to_good,
            loss_good: 0.0,
            loss_bad: 1.0,
        }
    }

    /// Fits the chain to a bandwidth trace: seconds below 60% of the
    /// trace's mean bandwidth are classified as bad, the good↔bad
    /// transition probabilities are estimated from the classified sample
    /// sequence, and the loss probabilities are scaled so the stationary
    /// mean loss equals `mean_loss`. A trace with no bad seconds (stable
    /// links) degrades to near-independent loss at `mean_loss`.
    pub fn from_trace(trace: &NetworkTrace, mean_loss: f64) -> Self {
        let samples = trace.samples();
        let mean = trace.mean_mbps();
        let threshold = 0.6 * mean;
        let bad: Vec<bool> = samples.iter().map(|&s| s < threshold).collect();
        let bad_count = bad.iter().filter(|&&b| b).count();
        if bad_count == 0 || bad_count == bad.len() || bad.len() < 2 {
            // Degenerate classification: independent loss.
            return Self {
                p_good_to_bad: 0.5,
                p_bad_to_good: 0.5,
                loss_good: mean_loss,
                loss_bad: mean_loss,
            };
        }
        let mut g2b = 0usize;
        let mut b2g = 0usize;
        let mut from_good = 0usize;
        let mut from_bad = 0usize;
        for w in bad.windows(2) {
            if w[0] {
                from_bad += 1;
                if !w[1] {
                    b2g += 1;
                }
            } else {
                from_good += 1;
                if w[1] {
                    g2b += 1;
                }
            }
        }
        let p_good_to_bad = (g2b as f64 / from_good.max(1) as f64).clamp(1e-3, 1.0);
        let p_bad_to_good = (b2g as f64 / from_bad.max(1) as f64).clamp(1e-3, 1.0);
        // Stationary bad-state occupancy of the fitted chain.
        let pi_bad = p_good_to_bad / (p_good_to_bad + p_bad_to_good);
        // Concentrate the loss budget in the bad state (10:1 odds), then
        // scale both so the stationary mean equals `mean_loss`.
        let raw = pi_bad * 10.0 + (1.0 - pi_bad);
        let loss_good = (mean_loss / raw).clamp(0.0, 1.0);
        let loss_bad = (loss_good * 10.0).clamp(0.0, 1.0);
        Self {
            p_good_to_bad,
            p_bad_to_good,
            loss_good,
            loss_bad,
        }
    }

    /// Stationary (long-run) loss rate of the chain.
    pub fn mean_loss(&self) -> f64 {
        let denom = self.p_good_to_bad + self.p_bad_to_good;
        if denom <= 0.0 {
            return self.loss_good;
        }
        let pi_bad = self.p_good_to_bad / denom;
        pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good
    }
}

/// Per-kind fault rates (independent per message, in `[0, 1]`), plus an
/// optional burst-loss chain whose losses add to the independent `drop`
/// rate.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Independent drop probability per message.
    pub drop: f64,
    /// Duplicate probability per delivered message.
    pub duplicate: f64,
    /// Reorder probability per delivered message (held until the next one).
    pub reorder: f64,
    /// Truncation probability per delivered message.
    pub truncate: f64,
    /// Single-bit corruption probability per delivered message.
    pub corrupt: f64,
    /// Optional Gilbert–Elliott burst-loss chain.
    pub burst: Option<GilbertElliott>,
}

impl FaultConfig {
    /// No faults at all (the injector becomes a transparent wrapper).
    pub fn lossless() -> Self {
        Self::default()
    }

    /// Bursty loss at the given mean rate (mean burst length 4 messages),
    /// no other fault kinds — the "2% burst loss" shape of the evaluation.
    pub fn bursty_loss(mean_loss: f64) -> Self {
        Self {
            burst: Some(GilbertElliott::bursty(mean_loss, 4.0)),
            ..Self::default()
        }
    }

    /// Every fault kind at the same independent rate plus bursty loss at
    /// that rate — the chaos-suite adversary.
    pub fn chaos(rate: f64) -> Self {
        Self {
            drop: rate,
            duplicate: rate,
            reorder: rate,
            truncate: rate,
            corrupt: rate,
            burst: Some(GilbertElliott::bursty(rate, 3.0)),
        }
    }
}

/// Injection counters: how many faults of each kind the link actually
/// applied (ground truth for the recovery telemetry on the session side).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Messages submitted to the link.
    pub sent: u64,
    /// Copies that arrived at the receiver (duplicates count twice).
    pub delivered: u64,
    /// Messages lost (independent drops plus burst losses).
    pub dropped: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Messages delivered out of order.
    pub reordered: u64,
    /// Messages delivered truncated.
    pub truncated: u64,
    /// Messages delivered with a flipped bit.
    pub corrupted: u64,
}

/// One transfer through the faulty link: how long the exchange occupied
/// the link and which payload copies actually arrived, in arrival order.
#[derive(Debug, Clone, PartialEq)]
pub struct Transfer {
    /// Link time consumed (seconds), including the RTT; charged even for
    /// dropped messages (the bytes still crossed the bottleneck before
    /// being lost).
    pub time_s: f64,
    /// Payload copies that reached the receiver, in arrival order. Empty
    /// for a drop (or while a reordered message is held back).
    pub arrivals: Vec<Vec<u8>>,
}

/// Anything that can carry one protocol payload from sender to receiver:
/// the borrowing [`FaultyLink`], the owning [`OwnedFaultyLink`] a server
/// tenant embeds, or a test double. The resilient session's recovery ladder
/// is written against this trait so the same ladder runs over either link
/// shape.
pub trait Transport {
    /// Sends one payload at absolute time `start_s` and returns what the
    /// receiver sees (arrival copies plus the link time consumed).
    fn transmit(&mut self, payload: &[u8], start_s: f64) -> Transfer;
}

/// The seeded fault-decision state, decoupled from any particular link so
/// it can be owned by value (see [`OwnedFaultyLink`]): one [`StdRng`], the
/// current Gilbert–Elliott burst state, the reorder hold slot, and the
/// injection counters. [`FaultInjector::apply`] mangles one payload given
/// the link time the clean link already charged.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    config: FaultConfig,
    rng: StdRng,
    /// Current Gilbert–Elliott state (`true` = bad).
    burst_bad: bool,
    /// Payload held back by a reorder fault, delivered after the next one.
    held: Option<Vec<u8>>,
    counters: FaultCounters,
}

impl FaultInjector {
    /// Creates an injector with the given fault profile; all fault
    /// decisions are drawn from a [`StdRng`] seeded with `seed`.
    pub fn new(config: FaultConfig, seed: u64) -> Self {
        Self {
            config,
            rng: StdRng::seed_from_u64(seed),
            burst_bad: false,
            held: None,
            counters: FaultCounters::default(),
        }
    }

    /// The fault profile this injector applies.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Injection counters so far.
    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    /// Applies the fault schedule to one payload whose clean transfer took
    /// `time_s` seconds, returning what the receiver sees. Deterministic
    /// given the construction seed and the call sequence.
    pub fn apply(&mut self, payload: &[u8], time_s: f64) -> Transfer {
        self.counters.sent += 1;

        // Burst chain advances once per message, before the loss draw.
        let burst_loss = match &self.config.burst {
            Some(ge) => {
                let flip: f64 = self.rng.random();
                let threshold = if self.burst_bad {
                    ge.p_bad_to_good
                } else {
                    ge.p_good_to_bad
                };
                if flip < threshold {
                    self.burst_bad = !self.burst_bad;
                }
                if self.burst_bad {
                    ge.loss_bad
                } else {
                    ge.loss_good
                }
            }
            None => 0.0,
        };
        let drop_draw: f64 = self.rng.random();
        let kind_draw: f64 = self.rng.random();
        if drop_draw < burst_loss || kind_draw < self.config.drop {
            self.counters.dropped += 1;
            return self.flushed(Vec::new(), time_s);
        }

        let mut bytes = payload.to_vec();
        let mangle: f64 = self.rng.random();
        if mangle < self.config.truncate && !bytes.is_empty() {
            let keep = self.rng.random_range(0..bytes.len());
            bytes.truncate(keep);
            self.counters.truncated += 1;
        } else if mangle < self.config.truncate + self.config.corrupt && !bytes.is_empty() {
            let bit = self.rng.random_range(0..bytes.len() * 8);
            bytes[bit / 8] ^= 1 << (bit % 8);
            self.counters.corrupted += 1;
        }

        let order: f64 = self.rng.random();
        if order < self.config.reorder && self.held.is_none() {
            // Hold this message back; it arrives after the next transmit.
            self.counters.reordered += 1;
            self.held = Some(bytes);
            return Transfer {
                time_s,
                arrivals: Vec::new(),
            };
        }

        let mut arrivals = vec![bytes.clone()];
        let dup: f64 = self.rng.random();
        if dup < self.config.duplicate {
            self.counters.duplicated += 1;
            arrivals.push(bytes);
        }
        self.flushed_many(arrivals, time_s)
    }

    /// Appends any held (reordered) payload after `arrivals`.
    fn flushed_many(&mut self, mut arrivals: Vec<Vec<u8>>, time_s: f64) -> Transfer {
        if let Some(held) = self.held.take() {
            arrivals.push(held);
        }
        self.counters.delivered += arrivals.len() as u64;
        Transfer { time_s, arrivals }
    }

    fn flushed(&mut self, arrivals: Vec<Vec<u8>>, time_s: f64) -> Transfer {
        self.flushed_many(arrivals, time_s)
    }
}

/// A [`SimulatedLink`] wrapper that injects seeded, deterministic
/// transport faults into opaque payloads (see the module docs). Borrows
/// its [`NetworkTrace`]; server tenants that must own their link use
/// [`OwnedFaultyLink`] instead — both share one [`FaultInjector`] so the
/// fault schedule is identical for the same seed.
#[derive(Debug, Clone)]
pub struct FaultyLink<'a> {
    link: SimulatedLink<'a>,
    injector: FaultInjector,
}

impl<'a> FaultyLink<'a> {
    /// Wraps a link with the given fault profile; all fault decisions are
    /// drawn from a [`StdRng`] seeded with `seed`.
    pub fn new(link: SimulatedLink<'a>, config: FaultConfig, seed: u64) -> Self {
        Self {
            link,
            injector: FaultInjector::new(config, seed),
        }
    }

    /// The wrapped (clean) link.
    pub fn inner(&self) -> &SimulatedLink<'a> {
        &self.link
    }

    /// Injection counters so far.
    pub fn counters(&self) -> FaultCounters {
        self.injector.counters()
    }

    /// Sends one payload at absolute time `start_s` and returns what the
    /// receiver sees. Deterministic given the construction seed and the
    /// call sequence.
    pub fn transmit(&mut self, payload: &[u8], start_s: f64) -> Transfer {
        let time_s = self.link.download_time(payload.len() as u64, start_s);
        self.injector.apply(payload, time_s)
    }
}

impl Transport for FaultyLink<'_> {
    fn transmit(&mut self, payload: &[u8], start_s: f64) -> Transfer {
        FaultyLink::transmit(self, payload, start_s)
    }
}

/// An owning variant of [`FaultyLink`] for contexts that cannot hold a
/// borrow across calls — a server tenant embeds one per ingest session.
/// Holds its [`NetworkTrace`] behind an [`Arc`] (traces are shared across
/// tenants) and constructs the clean [`SimulatedLink`] per transmit; the
/// fault schedule comes from the same [`FaultInjector`] as the borrowing
/// link, so a given `(config, seed)` produces the identical schedule.
#[derive(Debug, Clone)]
pub struct OwnedFaultyLink {
    trace: Arc<NetworkTrace>,
    injector: FaultInjector,
}

impl OwnedFaultyLink {
    /// Builds an owning faulty link over `trace` with the given fault
    /// profile, seeded with `seed`.
    pub fn new(trace: Arc<NetworkTrace>, config: FaultConfig, seed: u64) -> Self {
        Self {
            trace,
            injector: FaultInjector::new(config, seed),
        }
    }

    /// The underlying bandwidth trace.
    pub fn trace(&self) -> &NetworkTrace {
        &self.trace
    }

    /// Injection counters so far.
    pub fn counters(&self) -> FaultCounters {
        self.injector.counters()
    }

    /// Sends one payload at absolute time `start_s` and returns what the
    /// receiver sees. Deterministic given the construction seed and the
    /// call sequence.
    pub fn transmit(&mut self, payload: &[u8], start_s: f64) -> Transfer {
        let time_s = SimulatedLink::new(&self.trace).download_time(payload.len() as u64, start_s);
        self.injector.apply(payload, time_s)
    }
}

impl Transport for OwnedFaultyLink {
    fn transmit(&mut self, payload: &[u8], start_s: f64) -> Transfer {
        OwnedFaultyLink::transmit(self, payload, start_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stable_link(trace: &NetworkTrace) -> SimulatedLink<'_> {
        SimulatedLink::new(trace)
    }

    #[test]
    fn lossless_config_is_transparent() {
        let trace = NetworkTrace::stable(50.0, 60.0);
        let mut link = FaultyLink::new(stable_link(&trace), FaultConfig::lossless(), 1);
        let payload = vec![1u8, 2, 3, 4];
        for i in 0..50 {
            let t = link.transmit(&payload, i as f64 * 0.1);
            assert_eq!(t.arrivals, vec![payload.clone()]);
            assert!(t.time_s > 0.0);
        }
        let c = link.counters();
        assert_eq!(c.sent, 50);
        assert_eq!(c.delivered, 50);
        assert_eq!(
            c.dropped + c.duplicated + c.reordered + c.truncated + c.corrupted,
            0
        );
    }

    #[test]
    fn same_seed_same_schedule() {
        let trace = NetworkTrace::stable(50.0, 60.0);
        let cfg = FaultConfig::chaos(0.2);
        let payload: Vec<u8> = (0..64).collect();
        let run = |seed: u64| {
            let mut link = FaultyLink::new(stable_link(&trace), cfg.clone(), seed);
            (0..200)
                .map(|i| link.transmit(&payload, i as f64 * 0.05).arrivals)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should differ at 20% chaos");
    }

    #[test]
    fn fault_rates_are_roughly_honored() {
        let trace = NetworkTrace::stable(50.0, 600.0);
        let cfg = FaultConfig {
            drop: 0.1,
            duplicate: 0.1,
            reorder: 0.05,
            truncate: 0.05,
            corrupt: 0.05,
            burst: None,
        };
        let mut link = FaultyLink::new(stable_link(&trace), cfg, 99);
        let payload: Vec<u8> = (0..32).collect();
        let n = 4000;
        for i in 0..n {
            link.transmit(&payload, i as f64 * 0.01);
        }
        let c = link.counters();
        assert_eq!(c.sent, n);
        let rate = |x: u64| x as f64 / n as f64;
        assert!((rate(c.dropped) - 0.1).abs() < 0.03, "{c:?}");
        assert!((rate(c.duplicated) - 0.1 * 0.9).abs() < 0.03, "{c:?}");
        assert!(
            rate(c.truncated) > 0.01 && rate(c.corrupted) > 0.01,
            "{c:?}"
        );
        assert!(rate(c.reordered) > 0.01, "{c:?}");
    }

    #[test]
    fn reordered_payload_arrives_after_the_next_one() {
        let trace = NetworkTrace::stable(50.0, 60.0);
        let cfg = FaultConfig {
            reorder: 1.0,
            ..FaultConfig::default()
        };
        let mut link = FaultyLink::new(stable_link(&trace), cfg, 3);
        let a = vec![1u8];
        let b = vec![2u8];
        let t1 = link.transmit(&a, 0.0);
        assert!(t1.arrivals.is_empty(), "first message is held");
        // The second is also selected for reorder, but the hold slot is
        // taken, so it goes straight through and flushes the held one.
        let t2 = link.transmit(&b, 0.1);
        assert_eq!(t2.arrivals, vec![b, a]);
    }

    #[test]
    fn owned_link_matches_borrowing_link_schedule() {
        let trace = Arc::new(NetworkTrace::stable(50.0, 60.0));
        let cfg = FaultConfig::chaos(0.2);
        let payload: Vec<u8> = (0..64).collect();
        let mut borrowed = FaultyLink::new(SimulatedLink::new(&trace), cfg.clone(), 7);
        let mut owned = OwnedFaultyLink::new(Arc::clone(&trace), cfg, 7);
        for i in 0..200 {
            let start = i as f64 * 0.05;
            let a = borrowed.transmit(&payload, start);
            let b = owned.transmit(&payload, start);
            assert_eq!(a, b, "schedules diverged at message {i}");
        }
        assert_eq!(borrowed.counters(), owned.counters());
    }

    #[test]
    fn bursty_chain_hits_its_mean_loss() {
        let ge = GilbertElliott::bursty(0.02, 4.0);
        assert!((ge.mean_loss() - 0.02).abs() < 1e-9);
        let trace = NetworkTrace::stable(50.0, 600.0);
        let cfg = FaultConfig {
            burst: Some(ge),
            ..FaultConfig::default()
        };
        let mut link = FaultyLink::new(stable_link(&trace), cfg, 11);
        let payload = vec![0u8; 16];
        let n = 20_000;
        for i in 0..n {
            link.transmit(&payload, i as f64 * 0.01);
        }
        let observed = link.counters().dropped as f64 / n as f64;
        assert!((observed - 0.02).abs() < 0.01, "observed loss {observed}");
    }

    #[test]
    fn trace_driven_chain_tracks_outage_seconds() {
        // A trace that alternates long good stretches with short outages.
        let mut samples = Vec::new();
        for block in 0..20 {
            for _ in 0..8 {
                samples.push(60.0);
            }
            let _ = block;
            for _ in 0..2 {
                samples.push(5.0);
            }
        }
        let trace = NetworkTrace::from_samples("bursty", samples, 0.01).unwrap();
        let ge = GilbertElliott::from_trace(&trace, 0.05);
        // Bad dwell ≈ 2 s → p_bad_to_good ≈ 0.5; good dwell ≈ 8 s.
        assert!(ge.p_bad_to_good > 0.3 && ge.p_bad_to_good < 0.7, "{ge:?}");
        assert!(ge.p_good_to_bad < 0.3, "{ge:?}");
        assert!(ge.loss_bad > ge.loss_good, "{ge:?}");
        assert!((ge.mean_loss() - 0.05).abs() < 0.02, "{ge:?}");
        // A stable trace degrades to independent loss.
        let flat = NetworkTrace::stable(50.0, 60.0);
        let ge = GilbertElliott::from_trace(&flat, 0.05);
        assert!((ge.loss_good - ge.loss_bad).abs() < 1e-12);
    }
}

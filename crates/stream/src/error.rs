//! Error type for the streaming substrate.

use std::fmt;

/// Errors returned by the streaming components.
#[derive(Debug)]
pub enum Error {
    /// A configuration value is outside its documented domain.
    InvalidConfig(String),
    /// A network trace is empty or malformed.
    Trace(String),
    /// The requested video/chunk does not exist.
    NotFound(String),
    /// The transport layer could not deliver a frame even after climbing
    /// the whole recovery ladder (see [`crate::resilience`]).
    Transport(String),
    /// An error bubbled up from the super-resolution core.
    Core(volut_core::Error),
    /// An error bubbled up from the point-cloud substrate.
    PointCloud(volut_pointcloud::Error),
    /// An underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::Trace(msg) => write!(f, "invalid network trace: {msg}"),
            Error::NotFound(what) => write!(f, "not found: {what}"),
            Error::Transport(msg) => write!(f, "transport failure: {msg}"),
            Error::Core(e) => write!(f, "super-resolution error: {e}"),
            Error::PointCloud(e) => write!(f, "point cloud error: {e}"),
            Error::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Core(e) => Some(e),
            Error::PointCloud(e) => Some(e),
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<volut_core::Error> for Error {
    fn from(e: volut_core::Error) -> Self {
        Error::Core(e)
    }
}

impl From<volut_pointcloud::Error> for Error {
    fn from(e: volut_pointcloud::Error) -> Self {
        Error::PointCloud(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        for e in [
            Error::InvalidConfig("x".into()),
            Error::Trace("empty".into()),
            Error::NotFound("chunk 9".into()),
            Error::Transport("frame 3 unrecoverable".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn conversions() {
        let e: Error = volut_core::Error::InvalidRatio(0.0).into();
        assert!(matches!(e, Error::Core(_)));
        let e: Error = volut_pointcloud::Error::EmptyCloud("m".into()).into();
        assert!(matches!(e, Error::PointCloud(_)));
        let e: Error = std::io::Error::other("x").into();
        assert!(matches!(e, Error::Io(_)));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}

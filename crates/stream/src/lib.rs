//! # volut-stream
//!
//! Streaming substrate for the VoLUT reproduction: the volumetric-video
//! model, network traces and a simulated link, throughput estimation, the
//! playback buffer, the QoE objective (Eq. 10), continuous/discrete MPC ABR
//! controllers (§5), 6DoF motion traces and viewport culling for the ViVo
//! baseline, and the end-to-end streaming simulator that reproduces the
//! paper's QoE / data-usage experiments (Figures 12–14).
//!
//! # Example
//!
//! ```
//! use volut_stream::{simulator::{SessionConfig, StreamingSimulator}, systems::SystemKind,
//!                    trace::NetworkTrace, video::VideoMeta};
//!
//! let video = VideoMeta::long_dress();
//! let trace = NetworkTrace::stable(50.0, 120.0);
//! let sim = StreamingSimulator::new(SessionConfig::default());
//! let result = sim.run(&video, &trace, SystemKind::VolutContinuous).unwrap();
//! assert!(result.qoe.score > 0.0);
//! assert!(result.data_bytes > 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod abr;
pub mod buffer;
pub mod chunk;
pub mod client;
pub mod encoder;
pub mod error;
pub mod faults;
pub mod link;
pub mod motion;
pub mod qoe;
pub mod resilience;
pub mod server;
pub mod simulator;
pub mod systems;
pub mod telemetry;
pub mod throughput;
pub mod trace;
pub mod video;
pub mod viewport;

pub use error::Error;

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

//! Sampling operators: random downsampling (the paper's server-side
//! operator, §5.2), voxel-grid downsampling, and farthest point sampling
//! (the expensive alternative the paper rejects in §4.1).

use crate::cloud::PointCloud;
use crate::error::Error;
use crate::point::Point3;
use crate::Result;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::HashMap;

/// Randomly keeps each point with probability `ratio` (paper Eq. in §5.2:
/// `P_select(p_i) = r`). The result therefore contains *approximately*
/// `ratio * n` points; use [`random_downsample_exact`] when an exact count
/// is required.
///
/// # Errors
/// Returns [`Error::InvalidArgument`] unless `0 < ratio <= 1`.
///
/// # Example
///
/// ```
/// use volut_pointcloud::{synthetic, sampling};
/// let cloud = synthetic::sphere(2_000, 1.0, 1);
/// let low = sampling::random_downsample(&cloud, 0.25, 7).unwrap();
/// assert!(low.len() > 300 && low.len() < 700);
/// ```
pub fn random_downsample(cloud: &PointCloud, ratio: f64, seed: u64) -> Result<PointCloud> {
    validate_ratio(ratio)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let indices: Vec<usize> = (0..cloud.len())
        .filter(|_| rng.random::<f64>() < ratio)
        .collect();
    Ok(cloud.select(&indices))
}

/// Randomly selects exactly `target` points (without replacement, uniform).
///
/// # Errors
/// Returns [`Error::InvalidArgument`] when `target > cloud.len()`.
pub fn random_downsample_exact(cloud: &PointCloud, target: usize, seed: u64) -> Result<PointCloud> {
    if target > cloud.len() {
        return Err(Error::InvalidArgument(format!(
            "target {target} exceeds cloud size {}",
            cloud.len()
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut indices: Vec<usize> = (0..cloud.len()).collect();
    indices.shuffle(&mut rng);
    indices.truncate(target);
    indices.sort_unstable();
    Ok(cloud.select(&indices))
}

/// Keeps one representative point per occupied voxel of edge length
/// `voxel_size` (the representative is the first point encountered, which is
/// deterministic for a fixed input order).
///
/// # Errors
/// Returns [`Error::InvalidArgument`] when `voxel_size` is not positive.
pub fn voxel_downsample(cloud: &PointCloud, voxel_size: f32) -> Result<PointCloud> {
    if voxel_size <= 0.0 || !voxel_size.is_finite() {
        return Err(Error::InvalidArgument(
            "voxel_size must be positive and finite".into(),
        ));
    }
    let mut seen: HashMap<(i32, i32, i32), usize> = HashMap::new();
    let mut keep: Vec<usize> = Vec::new();
    for (i, &p) in cloud.positions().iter().enumerate() {
        let key = (
            (p.x / voxel_size).floor() as i32,
            (p.y / voxel_size).floor() as i32,
            (p.z / voxel_size).floor() as i32,
        );
        if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(key) {
            e.insert(i);
            keep.push(i);
        }
    }
    Ok(cloud.select(&keep))
}

/// Farthest point sampling (FPS): iteratively selects the point farthest
/// from the already-selected set until `target` points are chosen.
///
/// This is the geometry-preserving but slow alternative discussed in §4.1
/// (the paper measures ≥5 minutes for 200K→100K on a desktop); it is
/// included as a baseline for the sampling benchmarks.
///
/// # Errors
/// Returns [`Error::InvalidArgument`] when `target` is zero or larger than
/// the cloud, or [`Error::EmptyCloud`] for an empty input.
pub fn farthest_point_sampling(cloud: &PointCloud, target: usize, seed: u64) -> Result<PointCloud> {
    if cloud.is_empty() {
        return Err(Error::EmptyCloud("farthest_point_sampling".into()));
    }
    if target == 0 || target > cloud.len() {
        return Err(Error::InvalidArgument(format!(
            "target {target} must be in 1..={}",
            cloud.len()
        )));
    }
    let positions = cloud.positions();
    let mut rng = StdRng::seed_from_u64(seed);
    let first = rng.random_range(0..positions.len());
    let mut selected = Vec::with_capacity(target);
    selected.push(first);
    // dist[i] = distance from point i to the nearest selected point.
    let mut dist: Vec<f32> = positions
        .iter()
        .map(|&p| p.distance_squared(positions[first]))
        .collect();
    while selected.len() < target {
        let (next, _) =
            dist.iter()
                .enumerate()
                .fold((0usize, f32::NEG_INFINITY), |acc, (i, &d)| {
                    if d > acc.1 {
                        (i, d)
                    } else {
                        acc
                    }
                });
        selected.push(next);
        let np = positions[next];
        for (i, d) in dist.iter_mut().enumerate() {
            let nd = positions[i].distance_squared(np);
            if nd < *d {
                *d = nd;
            }
        }
    }
    selected.sort_unstable();
    Ok(cloud.select(&selected))
}

/// Deterministically splits a cloud into `parts` interleaved subsets
/// (round-robin by index). Useful for building train/validation pairs from a
/// single synthetic frame.
pub fn interleave_split(cloud: &PointCloud, parts: usize) -> Vec<PointCloud> {
    if parts == 0 {
        return Vec::new();
    }
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); parts];
    for i in 0..cloud.len() {
        groups[i % parts].push(i);
    }
    groups.into_iter().map(|g| cloud.select(&g)).collect()
}

/// Selects the `target` points whose positions are closest to a set of
/// jittered anchors, producing a *non-uniform* density pattern. Used by
/// tests and benchmarks to exercise the dilated interpolation's robustness
/// to uneven densities.
pub fn biased_downsample(cloud: &PointCloud, ratio: f64, seed: u64) -> Result<PointCloud> {
    validate_ratio(ratio)?;
    if cloud.is_empty() {
        return Ok(PointCloud::new());
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let bounds = cloud.bounds().expect("non-empty cloud has bounds");
    let anchor = Point3::new(
        rng.random_range(bounds.min.x..=bounds.max.x.max(bounds.min.x + f32::EPSILON)),
        rng.random_range(bounds.min.y..=bounds.max.y.max(bounds.min.y + f32::EPSILON)),
        rng.random_range(bounds.min.z..=bounds.max.z.max(bounds.min.z + f32::EPSILON)),
    );
    let diag = bounds.extent().norm().max(1e-6);
    let indices: Vec<usize> = (0..cloud.len())
        .filter(|&i| {
            let d = cloud.position(i).distance(anchor) / diag;
            // Keep probability decays with distance from the anchor but never
            // below 20% of the requested ratio so coverage is preserved.
            let p = ratio * (1.6 * (1.0 - f64::from(d))).clamp(0.2, 1.6);
            rng.random::<f64>() < p
        })
        .collect();
    Ok(cloud.select(&indices))
}

fn validate_ratio(ratio: f64) -> Result<()> {
    if !(ratio > 0.0 && ratio <= 1.0) {
        return Err(Error::InvalidArgument(format!(
            "sampling ratio must be in (0, 1], got {ratio}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic;

    #[test]
    fn random_downsample_ratio_respected() {
        let cloud = synthetic::sphere(4000, 1.0, 3);
        let low = random_downsample(&cloud, 0.5, 11).unwrap();
        let frac = low.len() as f64 / cloud.len() as f64;
        assert!((frac - 0.5).abs() < 0.08, "got fraction {frac}");
        assert!(low.has_colors());
    }

    #[test]
    fn random_downsample_rejects_bad_ratio() {
        let cloud = synthetic::sphere(10, 1.0, 3);
        assert!(random_downsample(&cloud, 0.0, 1).is_err());
        assert!(random_downsample(&cloud, 1.5, 1).is_err());
        assert!(random_downsample(&cloud, -0.1, 1).is_err());
    }

    #[test]
    fn random_downsample_is_deterministic_per_seed() {
        let cloud = synthetic::sphere(500, 1.0, 5);
        let a = random_downsample(&cloud, 0.3, 42).unwrap();
        let b = random_downsample(&cloud, 0.3, 42).unwrap();
        assert_eq!(a, b);
        let c = random_downsample(&cloud, 0.3, 43).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn exact_downsample_hits_target() {
        let cloud = synthetic::sphere(1000, 1.0, 7);
        let low = random_downsample_exact(&cloud, 137, 1).unwrap();
        assert_eq!(low.len(), 137);
        assert!(random_downsample_exact(&cloud, 2000, 1).is_err());
    }

    #[test]
    fn voxel_downsample_reduces_density() {
        let cloud = synthetic::sphere(3000, 1.0, 9);
        let low = voxel_downsample(&cloud, 0.2).unwrap();
        assert!(low.len() < cloud.len());
        assert!(!low.is_empty());
        assert!(voxel_downsample(&cloud, 0.0).is_err());
    }

    #[test]
    fn fps_spreads_points() {
        let cloud = synthetic::sphere(600, 1.0, 13);
        let fps = farthest_point_sampling(&cloud, 50, 1).unwrap();
        assert_eq!(fps.len(), 50);
        // FPS should cover the sphere: bounding box similar to the original.
        let ob = cloud.bounds().unwrap();
        let fb = fps.bounds().unwrap();
        assert!(fb.extent().norm() > 0.8 * ob.extent().norm());
        assert!(farthest_point_sampling(&cloud, 0, 1).is_err());
        assert!(farthest_point_sampling(&PointCloud::new(), 5, 1).is_err());
    }

    #[test]
    fn fps_better_coverage_than_biased_random() {
        // FPS minimum pairwise distance should exceed that of a biased sample.
        let cloud = synthetic::sphere(800, 1.0, 17);
        let fps = farthest_point_sampling(&cloud, 40, 2).unwrap();
        let biased = biased_downsample(&cloud, 0.05, 2).unwrap();
        let min_pairwise = |c: &PointCloud| {
            let mut best = f32::INFINITY;
            for i in 0..c.len() {
                for j in (i + 1)..c.len() {
                    best = best.min(c.position(i).distance(c.position(j)));
                }
            }
            best
        };
        if biased.len() >= 2 {
            assert!(min_pairwise(&fps) >= min_pairwise(&biased));
        }
    }

    #[test]
    fn interleave_split_partitions() {
        let cloud = synthetic::sphere(100, 1.0, 19);
        let parts = interleave_split(&cloud, 4);
        assert_eq!(parts.len(), 4);
        let total: usize = parts.iter().map(PointCloud::len).sum();
        assert_eq!(total, cloud.len());
        assert!(interleave_split(&cloud, 0).is_empty());
    }

    #[test]
    fn biased_downsample_valid_and_nonuniform() {
        let cloud = synthetic::sphere(3000, 1.0, 23);
        let b = biased_downsample(&cloud, 0.4, 5).unwrap();
        assert!(!b.is_empty());
        assert!(b.len() < cloud.len());
        assert!(biased_downsample(&cloud, 0.0, 5).is_err());
    }
}

//! Dual-tree (leaf-pair) exact all-kNN over the k-d tree.
//!
//! The SR engine's frame time is dominated by kNN *self-joins*: every point
//! of the frame cloud queries the index built over that same cloud (§4.1 —
//! interpolation is ≥70% of upsampling time, and nearly all of it is these
//! queries). The single-tree batch sweep answers them one query at a time;
//! after heavy tuning it is instruction-bound on per-query traversal
//! bookkeeping (~600 ns/query at 100k points) rather than on distance
//! arithmetic. This module removes that per-query bookkeeping
//! *algorithmically*: a k-d tree over the **queries** is traversed against
//! the k-d tree over the **reference points**, so traversal decisions are
//! made once per *node pair* instead of once per query:
//!
//! * every query leaf carries a shared pruning bound — the max over its
//!   queries' current k-th-best distances (and internal query nodes the max
//!   over their children), so one AABB–AABB distance test
//!   ([`crate::Aabb::distance_squared_to_aabb`]) rejects a whole
//!   (query-subtree, reference-subtree) pair before any point work;
//! * surviving leaf pairs run tile-vs-tile candidate scans through the same
//!   SoA/AVX2/AVX-512 kernels as the per-query path
//!   (`crate::kernels::scan_ids`, generic over the accumulator), with a
//!   per-row reference-leaf box pre-check mirroring the single-tree path's
//!   leaf arrival test;
//! * per-query results accumulate in a flat slab of packed
//!   `(distance-bits, index)` `u64` keys with exactly `BestK`'s
//!   replace-worst / rank-insert semantics, so survivors — and index-broken
//!   distance ties — are **bit-identical** to per-query [`KdTree::knn`] for
//!   any traversal order.
//!
//! The join is **bichromatic**: queries may be any point set (e.g. the
//! generated midpoints of the naive interpolator, or training-set
//! ground-truth lookups), in which case a query tree is built into the
//! caller's [`DualTreeScratch`]; when the query slice *is* the reference
//! cloud (the self-join case), the reference tree doubles as the query tree
//! and the build is skipped entirely. In the monochromatic case the
//! traversal visits diagonal (self) pairs first so every query's home leaf
//! seeds its pruning bound before any off-diagonal pair is scanned.
//!
//! # Selection policy
//!
//! [`KdTree`]'s `NeighborSearch::knn_batch` picks the algorithm per batch:
//! dual-tree for **self-joins** of at least [`DUAL_MIN_QUERIES_MONO`]
//! queries with `k ≤` [`DUAL_MAX_K`]; the single-tree sweep otherwise —
//! including all bichromatic batches, where the dual tree measured slower
//! (see [`DUAL_MIN_QUERIES_MONO`] for the numbers).
//! [`KdTree::knn_batch_with`] accepts an explicit [`BatchStrategy`] to
//! force either algorithm, plus a persistent [`DualTreeScratch`] so
//! steady-state frames allocate nothing.
//!
//! # Parallel traversal (query-leaf sharding)
//!
//! Under the `parallel` feature the traversal shards across the
//! work-stealing pool ([`crate::runtime`]) by partitioning the **query
//! tree**: a frontier of roughly `2 × workers` subtree roots covering the
//! leaf-slot space end to end (greedily splitting the widest shard) is
//! planned per batch, and each shard runs the ordinary pair traversal —
//! its query subtree against the whole reference tree — as one stealable
//! task. Shards are independent because all mutable traversal state is
//! per-shard: each owns the sub-slab of the flat row arena its leaf slots
//! map to (rebased via the traversal's slot base) and a private pruning-
//! bound vector drawn from a pool in [`DualTreeScratch`], so steady-state
//! frames still allocate nothing. Monochromatic shards schedule their
//! diagonal (self) pair first and the remaining reference subtrees
//! nearest-first, preserving the bound-seeding property within the shard.
//! Because bounds only *prune* pairs that provably cannot contribute and
//! row contents are decided by the packed key semantics alone, sharded
//! results are **bit-identical** to the sequential traversal at every
//! worker count (property-tested, including duplicate-heavy tie cases).
//! Batches smaller than a couple thousand queries per worker stay on the
//! single-shard sequential path.
//!
//! [`KdTree::knn`]: crate::knn::NeighborSearch::knn

use crate::kdtree::KdTree;
use crate::kernels::{self, ScanSink};
use crate::knn::pack_key;
use crate::neighborhoods::Neighborhoods;
use crate::point::Point3;

/// Which batch algorithm [`KdTree::knn_batch_with`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchStrategy {
    /// Pick per batch: dual-tree for large batches (see the module docs for
    /// the thresholds), single-tree otherwise.
    #[default]
    Auto,
    /// Always the single-tree (per-query, warm-started, Morton-ordered)
    /// sweep.
    SingleTree,
    /// Always the dual-tree leaf-pair traversal.
    DualTree,
}

/// Default for the smallest self-join batch the auto policy sends to the
/// dual tree (override with the `VOLUT_DUAL_MIN_QUERIES` environment
/// variable — see [`dual_min_queries_mono`]). The traversal amortizes
/// per-node work over whole leaves, which needs enough queries per leaf
/// region to pay for the pair bookkeeping; below this the warm-started
/// single-tree sweep wins.
///
/// Bichromatic batches are **never** auto-selected: measured on the build
/// host (100k jittered queries over a 100k humanoid cloud, k=5), the dual
/// tree ran ~1.7× the candidate volume of the self-join case — without the
/// diagonal self-pair, query leaves fill their first rows from whichever
/// offset reference leaf happens to be box-nearest, so the pruning bounds
/// start loose — and the batch additionally pays an `O(m log m)` query-tree
/// build (~16 ms at 100k). Net ≈ 0.75× vs the single-tree sweep, so Auto
/// keeps bichromatic batches on the single tree; [`BatchStrategy::DualTree`]
/// still forces the leaf-pair path for either shape.
pub const DUAL_MIN_QUERIES_MONO: usize = 4096;

/// Largest `k` the auto policy sends to the dual tree (the flat row slab
/// does an `O(k)` rank scan per accepted candidate, same as `BestK`, but
/// large-`k` rows blow past the slab's cache-friendly regime).
pub const DUAL_MAX_K: usize = 32;

/// The auto policy's self-join crossover, resolved once per process:
/// `VOLUT_DUAL_MIN_QUERIES` when set to a parseable value, else
/// [`DUAL_MIN_QUERIES_MONO`]. The env override exists so the crossover can
/// be re-tuned per deployment without a rebuild — the committed default was
/// measured on the single-core build host, and multicore hosts (where the
/// sharded traversal has real workers) may profitably set it lower.
pub fn dual_min_queries_mono() -> usize {
    static RESOLVED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *RESOLVED.get_or_init(|| {
        std::env::var("VOLUT_DUAL_MIN_QUERIES")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(DUAL_MIN_QUERIES_MONO)
    })
}

/// Fewest queries a parallel shard is worth: below this per shard, the
/// leaf-pair traversal is too short to repay task scheduling and the
/// per-shard warm-up of pruning bounds, so the batch stays sequential.
#[cfg_attr(not(feature = "parallel"), allow(dead_code))]
const DUAL_MIN_QUERIES_PER_SHARD: usize = 2048;

/// Reusable state of the dual-tree all-kNN: the query-side tree (built only
/// for bichromatic joins, storage reused via [`KdTree::build_in`]), the flat
/// per-query result rows and the per-node pruning bounds. Owned by the
/// caller — the SR engine keeps one inside its `FrameScratch` so repeated
/// frames perform **zero** allocations here at steady state.
#[derive(Debug, Default)]
pub struct DualTreeScratch {
    /// Query-side tree for bichromatic joins (self-joins reuse the
    /// reference tree and leave this untouched).
    qtree: KdTree,
    /// `stride` packed `(d2-bits, index)` keys per query, ascending, laid
    /// out in query-tree *leaf-slot* order so a leaf-pair scan touches one
    /// small contiguous run of rows (see [`RowSink`]); one scatter pass at
    /// emission restores caller order.
    rows: Vec<u64>,
    /// Per-query-node pruning bound (max k-th-best distance over the
    /// node's queries), indexed by query-tree node id.
    bounds: Vec<f32>,
    /// Per-shard pruning-bound vectors for the parallel traversal (each
    /// shard owns a full node-indexed vector so shards never alias; a shard
    /// only ever reads/writes bounds of query nodes inside its own
    /// subtree). Pooled here so steady-state parallel batches allocate
    /// nothing.
    shard_bounds: Vec<Vec<f32>>,
    /// How many batches ran through the dual-tree kernel with this scratch.
    invocations: u64,
}

impl DualTreeScratch {
    /// Creates an empty scratch (no allocations until the first batch).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of batches the dual-tree kernel answered with this scratch.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Total capacity (in bytes) of the scratch's buffers — the row slab,
    /// the node bounds **and** the query-side tree — observable by tests
    /// asserting steady-state reuse (repeated same-shape batches must not
    /// grow it).
    pub fn reserved_bytes(&self) -> usize {
        self.rows.capacity() * std::mem::size_of::<u64>()
            + self.bounds.capacity() * std::mem::size_of::<f32>()
            + self
                .shard_bounds
                .iter()
                .map(|b| b.capacity() * std::mem::size_of::<f32>())
                .sum::<usize>()
            + self.qtree.reserved_bytes()
    }
}

/// Sentinel key padding not-yet-filled row slots: squared distance `+inf`
/// with the largest index. Any real candidate's packed key compares below
/// it (real indices are `< u32::MAX` and real distances either `< +inf` or
/// tie at `+inf` with a smaller index), so a sentinel-padded row behaves
/// exactly like a [`BestK`] that is not yet full — its worst distance is
/// `+inf`, every candidate is accepted, and the sentinel is shifted out.
///
/// [`BestK`]: crate::knn::BestK
const SENTINEL: u64 = (f32::INFINITY.to_bits() as u64) << 32 | u32::MAX as u64;

/// One query's result row: `stride` packed keys kept sorted ascending at
/// all times, initially all [`SENTINEL`]. `push` replicates
/// [`BestK::push`]'s full-list branch (reject at-or-above the worst, rank
/// scan, shift, insert), which is the *only* branch a sentinel-full row
/// ever needs — so the surviving key set, and therefore every index-broken
/// tie, matches the per-query accumulator exactly.
///
/// `cap` is the dual-tree counterpart of [`BestK::begin_warm`]'s pruning
/// cap: a proven upper bound on the row's *final* k-th distance (or
/// `INFINITY`), folded into [`ScanSink::worst_d2`] so the vector compare
/// pre-filter and the box tests prune tightly before the row has filled
/// with real entries. Like the warm start, it cannot change results: a
/// candidate or region is only skipped when strictly beyond an upper bound
/// of the final k-th distance, and ties at the cap still pass through.
///
/// [`BestK::push`]: crate::knn::BestK::push
/// [`BestK::begin_warm`]: crate::knn::BestK::begin_warm
struct RowSink<'a> {
    keys: &'a mut [u64],
    cap: f32,
}

impl ScanSink for RowSink<'_> {
    #[inline(always)]
    fn worst_d2(&self) -> f32 {
        // Sentinel slots read as +inf, so this is the cap until the row is
        // full and the tighter of the two afterwards (both are valid upper
        // bounds on the final k-th distance).
        f32::from_bits((self.keys[self.keys.len() - 1] >> 32) as u32).min(self.cap)
    }

    #[inline(always)]
    fn push(&mut self, index: usize, d2: f32, _pos: Point3) {
        let key = pack_key(index, d2);
        let len = self.keys.len();
        if key >= self.keys[len - 1] {
            return;
        }
        // Branchless fixed-trip rank scan, as in `BestK::rank_of`.
        let rank: usize = self.keys.iter().map(|&a| usize::from(a < key)).sum();
        self.keys.copy_within(rank..len - 1, rank + 1);
        self.keys[rank] = key;
    }
}

/// Auto policy: should this batch run through the dual tree?
pub(crate) fn select_dual_tree(
    strategy: BatchStrategy,
    queries: &[Point3],
    k: usize,
    rtree: &KdTree,
) -> bool {
    match strategy {
        BatchStrategy::SingleTree => false,
        BatchStrategy::DualTree => true,
        BatchStrategy::Auto => {
            k <= DUAL_MAX_K
                && queries.len() >= dual_min_queries_mono()
                && is_self_join(queries, rtree)
        }
    }
}

/// `true` when the query slice is exactly the indexed cloud (one linear
/// compare — two orders of magnitude cheaper than the traversal it tunes).
#[inline]
fn is_self_join(queries: &[Point3], rtree: &KdTree) -> bool {
    queries.len() == rtree.points().len() && queries == rtree.points()
}

/// Runs the dual-tree all-kNN: appends one `stride`-wide row per query to
/// `out`, in query order, bit-identical to the per-query path. The caller
/// ([`KdTree::knn_batch_with`]) has already handled `k == 0`, an empty
/// reference cloud and row reservation; `stride = k.min(reference len)`.
pub(crate) fn all_knn(
    rtree: &KdTree,
    queries: &[Point3],
    stride: usize,
    out: &mut Neighborhoods,
    scratch: &mut DualTreeScratch,
) {
    if queries.is_empty() {
        return;
    }
    scratch.invocations += 1;
    let mono = is_self_join(queries, rtree);
    let qtree: &KdTree = if mono {
        rtree
    } else {
        scratch.qtree.build_in(queries);
        &scratch.qtree
    };
    // Sentinel-fill the row slab; it keeps its allocation across batches.
    scratch.rows.clear();
    scratch.rows.resize(queries.len() * stride, SENTINEL);
    // Shard the query-leaf set across pool workers when the batch is big
    // enough to repay it; otherwise run the classic sequential traversal.
    let shards = plan_shards(qtree, queries.len());
    if shards.len() > 1 {
        run_sharded(
            rtree,
            qtree,
            mono,
            stride,
            &shards,
            &mut scratch.rows,
            &mut scratch.shard_bounds,
        );
    } else {
        scratch.bounds.clear();
        scratch.bounds.resize(qtree.node_count(), f32::INFINITY);
        Traversal {
            qtree,
            rtree,
            rows: &mut scratch.rows,
            bounds: &mut scratch.bounds,
            stride,
            mono,
            slot_base: 0,
            prev_slot: usize::MAX,
        }
        .pair(qtree.root_id(), rtree.root_id(), 0.0);
    }
    // Every row is full (nothing prunes against a sentinel's infinite
    // bound) and already sorted by (distance, index); the low 32 bits of a
    // packed key are the neighbor index. Rows live in leaf-slot order, so
    // one scatter pass through the query tree's permutation restores the
    // caller's query order — the same emission shape as the single-tree
    // sweep's Morton un-permutation.
    let slab = out.push_uniform_rows(queries.len(), stride);
    for (slot, &qi) in qtree.order().iter().enumerate() {
        let src = &scratch.rows[slot * stride..(slot + 1) * stride];
        let dst = &mut slab[qi as usize * stride..(qi as usize + 1) * stride];
        for (d, &key) in dst.iter_mut().zip(src) {
            debug_assert_ne!(key, SENTINEL, "dual-tree rows end full");
            *d = key as u32;
        }
    }
}

/// One parallel shard of the query side: a query-tree node whose subtree
/// covers the contiguous leaf-slot range `lo..hi`. The shard set partitions
/// the whole leaf-slot space, so shards own disjoint row sub-slabs and can
/// traverse concurrently.
#[cfg_attr(not(feature = "parallel"), allow(dead_code))]
#[derive(Clone, Copy)]
struct Shard {
    root: u32,
    lo: usize,
    hi: usize,
}

/// Leaf-slot span of `n`'s subtree. Children are allocated over contiguous
/// slot sub-ranges at build time, so the span is (leftmost leaf's start,
/// rightmost leaf's end) — two root-to-leaf walks, no subtree scan.
#[cfg_attr(not(feature = "parallel"), allow(dead_code))]
fn subtree_span(tree: &KdTree, n: u32) -> (usize, usize) {
    let mut lo_n = n;
    let lo = loop {
        let node = tree.node(lo_n);
        if node.is_leaf() {
            break node.leaf_range().0;
        }
        lo_n = node.children().0;
    };
    let mut hi_n = n;
    let hi = loop {
        let node = tree.node(hi_n);
        if node.is_leaf() {
            break node.leaf_range().1;
        }
        hi_n = node.children().1;
    };
    (lo, hi)
}

/// Decides the parallel decomposition of a batch: a frontier of query-tree
/// nodes partitioning the leaf-slot space, sized to about twice the current
/// pool's worker count (slack for stealing to balance uneven shards).
/// Returns a single whole-tree shard — i.e. "stay sequential" — when the
/// pool has one executor or the batch is too small to repay sharding.
fn plan_shards(qtree: &KdTree, queries: usize) -> Vec<Shard> {
    let whole = || {
        let (lo, hi) = (0usize, queries);
        vec![Shard {
            root: qtree.root_id(),
            lo,
            hi,
        }]
    };
    #[cfg(not(feature = "parallel"))]
    {
        return whole();
    }
    #[cfg(feature = "parallel")]
    {
        let workers = crate::par::worker_count(queries, DUAL_MIN_QUERIES_PER_SHARD);
        if workers <= 1 {
            return whole();
        }
        let target = workers * 2;
        let mut frontier: Vec<Shard> = whole();
        while frontier.len() < target {
            // Split the widest shard; stop when only leaves remain.
            let Some(widest) = frontier
                .iter()
                .position(|s| !qtree.node(s.root).is_leaf())
                .map(|first| {
                    frontier
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| !qtree.node(s.root).is_leaf())
                        .max_by_key(|(_, s)| s.hi - s.lo)
                        .map_or(first, |(i, _)| i)
                })
            else {
                break;
            };
            let shard = frontier.swap_remove(widest);
            let (a, b) = qtree.node(shard.root).children();
            let (alo, ahi) = subtree_span(qtree, a);
            let (blo, bhi) = subtree_span(qtree, b);
            frontier.push(Shard {
                root: a,
                lo: alo,
                hi: ahi,
            });
            frontier.push(Shard {
                root: b,
                lo: blo,
                hi: bhi,
            });
        }
        frontier.sort_by_key(|s| s.lo);
        frontier
    }
}

/// Sequential-build stub: [`plan_shards`] never returns more than one shard
/// without the `parallel` feature, so the sharded branch is unreachable.
#[cfg(not(feature = "parallel"))]
#[allow(clippy::too_many_arguments)]
fn run_sharded(
    _rtree: &KdTree,
    _qtree: &KdTree,
    _mono: bool,
    _stride: usize,
    _shards: &[Shard],
    _all_rows: &mut [u64],
    _bounds_pool: &mut Vec<Vec<f32>>,
) {
    unreachable!("plan_shards stays sequential without the parallel feature");
}

/// Runs the traversal sharded across the pool. Each shard task owns the
/// row sub-slab of its leaf-slot range and a full node-indexed bounds
/// vector (pooled in the scratch), so tasks share nothing mutable; results
/// are bit-identical to the sequential traversal because bounds only prune
/// provably irrelevant work and row contents are decided by packed
/// `(distance, index)` keys alone (see the module docs).
///
/// Scheduling inside a shard mirrors the sequential order's intent: in the
/// monochromatic case the shard scans its *diagonal* pair first (its
/// queries meet their own points, seeding tight pruning bounds — the very
/// property that makes self-joins the dual tree's winning case), then the
/// other shards' reference subtrees nearest-first. Bichromatic shards
/// descend the whole reference tree exactly like the sequential `(split,
/// split)` arm.
#[cfg(feature = "parallel")]
#[allow(clippy::too_many_arguments)]
fn run_sharded(
    rtree: &KdTree,
    qtree: &KdTree,
    mono: bool,
    stride: usize,
    shards: &[Shard],
    all_rows: &mut [u64],
    bounds_pool: &mut Vec<Vec<f32>>,
) {
    use crate::par::SendPtr;
    // Pooled per-shard bounds: grow the pool to the shard count, then reset
    // each vector to node-count ∞ entries (allocation-free at steady state).
    if bounds_pool.len() < shards.len() {
        bounds_pool.resize_with(shards.len(), Vec::new);
    }
    for b in &mut bounds_pool[..shards.len()] {
        b.clear();
        b.resize(qtree.node_count(), f32::INFINITY);
    }
    let mut shard_bounds: Vec<&mut [f32]> = bounds_pool[..shards.len()]
        .iter_mut()
        .map(|b| b.as_mut_slice())
        .collect();
    let bounds_ptr = SendPtr::new(shard_bounds.as_mut_ptr());
    let rows_ptr = SendPtr::new(all_rows.as_mut_ptr());
    crate::runtime::run_range(shards.len(), 1, |r| {
        for i in r {
            let shard = shards[i];
            // SAFETY: shard index `i` is visited by exactly one task, and
            // shard slot ranges are disjoint, so the bounds slot and the
            // rows sub-slab are exclusively this task's; both borrows end
            // before `run_range` returns.
            let bounds: &mut [f32] = unsafe { &mut *bounds_ptr.get().add(i) };
            let rows = unsafe {
                std::slice::from_raw_parts_mut(
                    rows_ptr.get().add(shard.lo * stride),
                    (shard.hi - shard.lo) * stride,
                )
            };
            let mut t = Traversal {
                qtree,
                rtree,
                rows,
                bounds,
                stride,
                mono,
                slot_base: shard.lo,
                prev_slot: usize::MAX,
            };
            if mono {
                // Diagonal first, then the other shards' subtrees as
                // reference sides, nearest box first.
                t.pair(shard.root, shard.root, 0.0);
                let mut others: Vec<(u32, f32)> = shards
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, s)| (s.root, t.child_dist(shard.root, s.root)))
                    .collect();
                others.sort_by(|a, b| a.1.total_cmp(&b.1));
                for (rn, d) in others {
                    t.pair(shard.root, rn, d);
                }
            } else {
                t.pair(shard.root, rtree.root_id(), 0.0);
            }
        }
    });
}

/// The recursive (query-node, reference-node) pair walk. Each pair is
/// visited at most once (the decomposition of a pair is a function of the
/// pair, so the call graph is a tree), descends the reference side
/// nearest-child-first so bounds tighten before far pairs are tested, and —
/// in the monochromatic case — descends diagonal pairs first so every query
/// leaf scans its own tile (which contains the queries themselves) before
/// anything else.
///
/// NOTE: the manual `work_count_probe` test below mirrors `pair` and
/// `scan_pair` with counters (the numbers behind the selection-policy
/// docs); keep it in sync when changing the traversal or scan logic.
struct Traversal<'a> {
    qtree: &'a KdTree,
    rtree: &'a KdTree,
    rows: &'a mut [u64],
    bounds: &'a mut [f32],
    stride: usize,
    mono: bool,
    /// First leaf slot covered by `rows` — zero for the sequential
    /// whole-tree traversal; a shard's range start for the parallel one
    /// (shards own the sub-slab of their own leaf-slot range, so absolute
    /// slots are rebased before indexing `rows`).
    slot_base: usize,
    /// Slot of the most recently scanned query row — the warm-start seed
    /// for the next cold row (usually the previous slot of the same leaf;
    /// across leaf boundaries, the last row of the previously scanned
    /// leaf). `usize::MAX` until the first row has been scanned.
    prev_slot: usize,
}

impl Traversal<'_> {
    /// Visits the pair `(qn, rn)` whose boxes are `d` apart (squared,
    /// computed by the caller — the root pair passes `0.0`, which is always
    /// a valid lower bound and never mis-prunes).
    fn pair(&mut self, qn: u32, rn: u32, d: f32) {
        // Node-pair rejection: if the boxes are farther apart than the
        // worst k-th-best any query below `qn` still holds, no point below
        // `rn` can enter any of those rows. Equality passes through —
        // boundary ties are resolved by the row insert, like everywhere
        // else.
        if d > self.bounds[qn as usize] {
            return;
        }
        let qnode = self.qtree.node(qn);
        let rnode = self.rtree.node(rn);
        match (qnode.is_leaf(), rnode.is_leaf()) {
            (true, true) => self.scan_pair(qn, rn),
            (true, false) => {
                let ((near, dn), (far, df)) = self.order_children(qn, rnode.children());
                self.pair(qn, near, dn);
                self.pair(qn, far, df);
            }
            (false, true) => {
                let (qa, qb) = qnode.children();
                self.pair(qa, rn, self.child_dist(qa, rn));
                self.pair(qb, rn, self.child_dist(qb, rn));
                self.refresh_bound(qn, qa, qb);
            }
            (false, false) => {
                let (qa, qb) = qnode.children();
                if self.mono && qn == rn {
                    // Diagonal pairs first: each query subtree meets its own
                    // points before any sibling's, seeding tight bounds.
                    let (ra, rb) = rnode.children();
                    self.pair(qa, ra, 0.0);
                    self.pair(qb, rb, 0.0);
                    self.pair(qa, rb, self.child_dist(qa, rb));
                    self.pair(qb, ra, self.child_dist(qb, ra));
                } else {
                    // Split the query side only: every query leaf ends up
                    // running its own nearest-first descent of the
                    // reference tree (the `(leaf, split)` arm) under the
                    // group bound, instead of inheriting reference-subtree
                    // commitments made high up where offset boxes all tie
                    // at distance zero. The extra node-pair visits are
                    // cheap box tests; the ordering quality decides how
                    // many leaf scans survive.
                    self.pair(qa, rn, self.child_dist(qa, rn));
                    self.pair(qb, rn, self.child_dist(qb, rn));
                }
                self.refresh_bound(qn, qa, qb);
            }
        }
    }

    /// Box distance between query node `qn` and reference node `rn`.
    #[inline(always)]
    fn child_dist(&self, qn: u32, rn: u32) -> f32 {
        self.qtree
            .node_aabb(qn)
            .distance_squared_to_aabb(&self.rtree.node_aabb(rn))
    }

    /// Orders a reference node's children by box distance to query node
    /// `qn` (nearest first), returning each with its distance so the
    /// recursion does not recompute it.
    #[inline(always)]
    fn order_children(&self, qn: u32, (ra, rb): (u32, u32)) -> ((u32, f32), (u32, f32)) {
        let da = self.child_dist(qn, ra);
        let db = self.child_dist(qn, rb);
        if da <= db {
            ((ra, da), (rb, db))
        } else {
            ((rb, db), (ra, da))
        }
    }

    /// Re-derives an internal query node's bound from its children's. The
    /// children only tighten, so the cached max stays a true upper bound on
    /// every row below `qn` between refreshes.
    #[inline(always)]
    fn refresh_bound(&mut self, qn: u32, qa: u32, qb: u32) {
        self.bounds[qn as usize] = self.bounds[qa as usize].max(self.bounds[qb as usize]);
    }

    /// Leaf-pair scan: every query row of leaf `qn` sweeps reference leaf
    /// `rn`'s SoA tile, guarded by the same tight-leaf-box test the
    /// single-tree path applies on leaf arrival. Afterwards the query
    /// leaf's shared bound is recomputed exactly (max over its rows'
    /// worsts).
    ///
    /// Rows that have not yet filled (their first scan — for the interior
    /// of the traversal that is the leaf's first surviving pair, which in
    /// the monochromatic case is the diagonal self-pair) are warm-started
    /// exactly like [`BestK::begin_warm`]: the previously scanned row's
    /// `stride` entries are that many *distinct* reference points, so the
    /// largest of their distances to this query is a true upper bound on
    /// this row's final k-th distance and becomes the initial pruning cap.
    /// Leaf slots are Morton-sorted at build time, making consecutive rows
    /// spatial neighbors and the cap tight from the first block of the very
    /// first tile scan; results are unaffected (candidates are only skipped
    /// when strictly beyond the bound, ties still pass).
    ///
    /// [`BestK::begin_warm`]: crate::knn::BestK::begin_warm
    fn scan_pair(&mut self, qn: u32, rn: u32) {
        let (qs, qe) = self.qtree.node(qn).leaf_range();
        let (rs, re) = self.rtree.node(rn).leaf_range();
        let rbox = self.rtree.node_aabb(rn);
        let (qxs, qys, qzs) = (
            self.qtree.soa().xs(),
            self.qtree.soa().ys(),
            self.qtree.soa().zs(),
        );
        // The reference tile is about to be streamed `qe - qs` times; pull
        // its lanes in behind the first row's scan.
        kernels::prefetch_read(&self.rtree.soa().xs()[rs]);
        kernels::prefetch_read(&self.rtree.soa().ys()[rs]);
        kernels::prefetch_read(&self.rtree.soa().zs()[rs]);
        let mut bound = 0.0f32;
        for slot in qs..qe {
            let q = Point3::new(qxs[slot], qys[slot], qzs[slot]);
            let local = slot - self.slot_base;
            let filled = {
                let row = &self.rows[local * self.stride..(local + 1) * self.stride];
                f32::from_bits((row[row.len() - 1] >> 32) as u32).is_finite()
            };
            let cap = if filled {
                f32::INFINITY
            } else {
                self.warm_cap(q)
            };
            let row = &mut self.rows[local * self.stride..(local + 1) * self.stride];
            let mut sink = RowSink { keys: row, cap };
            if rbox.distance_squared_to(q) <= sink.worst_d2() {
                kernels::scan_ids(self.rtree.soa(), self.rtree.order(), rs, re, q, &mut sink);
            }
            bound = bound.max(sink.worst_d2());
            self.prev_slot = slot;
        }
        self.bounds[qn as usize] = bound;
    }

    /// [`BestK::begin_warm`]'s bound for the dual tree: the largest squared
    /// distance from `q` to the entries of the previously scanned row (they
    /// are `stride` distinct reference points, or the whole cloud when it is
    /// smaller than `k`, so `q`'s final k-th distance cannot exceed it).
    /// Returns `INFINITY` when no previous row exists or it is not yet
    /// complete. Exact distances to real candidates — the same arithmetic
    /// the scan kernels use — so no rounding slack is needed.
    ///
    /// [`BestK::begin_warm`]: crate::knn::BestK::begin_warm
    #[inline]
    fn warm_cap(&self, q: Point3) -> f32 {
        if self.prev_slot == usize::MAX {
            return f32::INFINITY;
        }
        let local = self.prev_slot - self.slot_base;
        let prow = &self.rows[local * self.stride..(local + 1) * self.stride];
        if *prow.last().expect("stride > 0") == SENTINEL {
            return f32::INFINITY;
        }
        let points = self.rtree.points();
        let mut cap = 0.0f32;
        for &key in prow {
            let p = points[key as u32 as usize];
            cap = cap.max(q.distance_squared(p));
        }
        cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::NeighborSearch;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn random_points(n: usize, seed: u64) -> Vec<Point3> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point3::new(
                    rng.random_range(-10.0..10.0),
                    rng.random_range(-10.0..10.0),
                    rng.random_range(-10.0..10.0),
                )
            })
            .collect()
    }

    /// Forced dual-tree rows must equal the per-query oracle rows exactly.
    fn assert_dual_matches_per_query(points: &[Point3], queries: &[Point3], k: usize) {
        let tree = KdTree::build(points);
        let mut scratch = DualTreeScratch::new();
        let mut dual = Neighborhoods::new();
        tree.knn_batch_with(queries, k, &mut dual, BatchStrategy::DualTree, &mut scratch);
        assert_eq!(dual.len(), queries.len());
        for (i, &q) in queries.iter().enumerate() {
            let expected: Vec<u32> = tree.knn(q, k).iter().map(|n| n.index as u32).collect();
            assert_eq!(dual.row(i), expected.as_slice(), "k {k} query {i}");
        }
    }

    #[test]
    fn monochromatic_matches_per_query() {
        let pts = random_points(700, 1);
        for k in [1usize, 4, 9, 32] {
            assert_dual_matches_per_query(&pts, &pts, k);
        }
    }

    #[test]
    fn bichromatic_matches_per_query() {
        let pts = random_points(600, 2);
        let queries = random_points(450, 3);
        for k in [1usize, 5, 9] {
            assert_dual_matches_per_query(&pts, &queries, k);
        }
    }

    #[test]
    fn duplicate_points_break_ties_by_index() {
        let mut pts = vec![Point3::ONE; 30];
        pts.extend(random_points(200, 4));
        pts.extend(vec![Point3::ONE; 30]);
        let queries = pts.clone();
        assert_dual_matches_per_query(&pts, &queries, 8);
        // A bichromatic query landing exactly on the duplicates must get
        // the lowest indices.
        let tree = KdTree::build(&pts);
        let mut scratch = DualTreeScratch::new();
        let mut out = Neighborhoods::new();
        tree.knn_batch_with(
            &[Point3::ONE],
            6,
            &mut out,
            BatchStrategy::DualTree,
            &mut scratch,
        );
        assert_eq!(out.row(0), &[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn k_exceeding_cloud_and_small_clouds() {
        let pts = random_points(10, 5);
        assert_dual_matches_per_query(&pts, &pts, 25);
        let queries = random_points(5, 6);
        assert_dual_matches_per_query(&pts, &queries, 1000);
        // Two-point cloud, one query.
        let two = vec![Point3::ZERO, Point3::ONE];
        assert_dual_matches_per_query(&two, &[Point3::new(0.4, 0.0, 0.0)], 2);
    }

    #[test]
    fn degenerate_clouds_match_per_query() {
        // Identical points, collinear points, planar grid.
        let identical = vec![Point3::splat(2.5); 150];
        assert_dual_matches_per_query(&identical, &identical, 7);
        let collinear: Vec<Point3> = (0..200)
            .map(|i| Point3::new((i / 3) as f32, 0.0, 0.0))
            .collect();
        assert_dual_matches_per_query(&collinear, &collinear, 5);
        let planar: Vec<Point3> = (0..240)
            .map(|i| Point3::new((i % 16) as f32, (i / 16) as f32, 0.0))
            .collect();
        assert_dual_matches_per_query(&planar, &planar, 9);
        // Bichromatic over degenerate references.
        let queries = random_points(80, 7);
        assert_dual_matches_per_query(&collinear, &queries, 4);
    }

    #[test]
    fn empty_inputs_produce_empty_rows() {
        let tree = KdTree::build(&[]);
        let mut scratch = DualTreeScratch::new();
        let mut out = Neighborhoods::new();
        tree.knn_batch_with(
            &[Point3::ZERO, Point3::ONE],
            3,
            &mut out,
            BatchStrategy::DualTree,
            &mut scratch,
        );
        assert_eq!(out.len(), 2);
        assert!(out.row(0).is_empty() && out.row(1).is_empty());
        // k == 0 likewise; and an empty query slice appends nothing.
        let tree = KdTree::build(&random_points(50, 8));
        tree.knn_batch_with(
            &[Point3::ZERO],
            0,
            &mut out,
            BatchStrategy::DualTree,
            &mut scratch,
        );
        assert_eq!(out.len(), 3);
        assert!(out.row(2).is_empty());
        tree.knn_batch_with(&[], 4, &mut out, BatchStrategy::DualTree, &mut scratch);
        assert_eq!(out.len(), 3);
        assert_eq!(scratch.invocations(), 0, "empty batches bypass the kernel");
    }

    #[test]
    fn scratch_is_reused_without_growth() {
        let pts = random_points(3000, 9);
        let queries = random_points(2000, 10);
        let tree = KdTree::build(&pts);
        let mut scratch = DualTreeScratch::new();
        let mut out = Neighborhoods::new();
        tree.knn_batch_with(&queries, 8, &mut out, BatchStrategy::DualTree, &mut scratch);
        let reserved = scratch.reserved_bytes();
        assert!(reserved > 0);
        for round in 0..3 {
            let mut again = Neighborhoods::new();
            tree.knn_batch_with(
                &queries,
                8,
                &mut again,
                BatchStrategy::DualTree,
                &mut scratch,
            );
            assert_eq!(again, out, "round {round}");
            assert_eq!(
                scratch.reserved_bytes(),
                reserved,
                "steady-state batches must not grow the scratch"
            );
        }
        assert_eq!(scratch.invocations(), 4);
    }

    /// The sharded parallel traversal must produce byte-for-byte the same
    /// rows as the sequential one, for every worker count, both join
    /// shapes, and duplicate-heavy ties — and its per-shard bounds pool
    /// must reach a steady state (no growth on repeated same-shape
    /// batches).
    #[cfg(feature = "parallel")]
    #[test]
    fn sharded_traversal_matches_sequential() {
        let mut pts = random_points(6_000, 20);
        pts.extend(vec![Point3::ONE; 40]); // duplicate cluster: tie-breaking
        let tree = KdTree::build(&pts);
        let queries = random_points(5_000, 21);
        for k in [1usize, 5, 9] {
            let mut seq_mono = Neighborhoods::new();
            let mut seq_bi = Neighborhoods::new();
            let mut scratch = DualTreeScratch::new();
            crate::runtime::with_workers(1, || {
                tree.knn_batch_with(
                    &pts,
                    k,
                    &mut seq_mono,
                    BatchStrategy::DualTree,
                    &mut scratch,
                );
                tree.knn_batch_with(
                    &queries,
                    k,
                    &mut seq_bi,
                    BatchStrategy::DualTree,
                    &mut scratch,
                );
            });
            for workers in [2usize, 4, 8] {
                let mut scratch = DualTreeScratch::new();
                crate::runtime::with_workers(workers, || {
                    let mut mono = Neighborhoods::new();
                    tree.knn_batch_with(&pts, k, &mut mono, BatchStrategy::DualTree, &mut scratch);
                    assert_eq!(mono, seq_mono, "mono k {k} workers {workers}");
                    assert!(
                        !scratch.shard_bounds.is_empty(),
                        "parallel path must engage under a {workers}-worker pool"
                    );
                    let mut bi = Neighborhoods::new();
                    tree.knn_batch_with(
                        &queries,
                        k,
                        &mut bi,
                        BatchStrategy::DualTree,
                        &mut scratch,
                    );
                    assert_eq!(bi, seq_bi, "bichromatic k {k} workers {workers}");
                    // Both batch shapes have now sized every pooled buffer
                    // (row slab, shard bounds, query tree); repeats must
                    // reuse them without growth.
                    let reserved = scratch.reserved_bytes();
                    let mut again = Neighborhoods::new();
                    tree.knn_batch_with(&pts, k, &mut again, BatchStrategy::DualTree, &mut scratch);
                    assert_eq!(again, seq_mono);
                    tree.knn_batch_with(
                        &queries,
                        k,
                        &mut Neighborhoods::new(),
                        BatchStrategy::DualTree,
                        &mut scratch,
                    );
                    assert_eq!(
                        scratch.reserved_bytes(),
                        reserved,
                        "steady-state parallel batches must not grow the scratch"
                    );
                });
            }
        }
    }

    /// Shard planning partitions the leaf-slot space exactly.
    #[cfg(feature = "parallel")]
    #[test]
    fn shard_frontier_partitions_leaf_slots() {
        let pts = random_points(10_000, 22);
        let tree = KdTree::build(&pts);
        crate::runtime::with_workers(4, || {
            let shards = plan_shards(&tree, pts.len());
            assert!(shards.len() > 1);
            assert_eq!(shards[0].lo, 0);
            assert_eq!(shards.last().expect("nonempty").hi, pts.len());
            for pair in shards.windows(2) {
                assert_eq!(pair[0].hi, pair[1].lo, "spans must be contiguous");
            }
        });
        // One executor: a single whole-tree shard, i.e. stay sequential.
        crate::runtime::with_workers(1, || {
            assert_eq!(plan_shards(&tree, pts.len()).len(), 1);
        });
        // Too few queries per shard: likewise.
        crate::runtime::with_workers(8, || {
            assert_eq!(plan_shards(&tree, 100).len(), 1);
        });
    }

    #[test]
    fn auto_policy_selects_as_documented() {
        let pts = random_points(DUAL_MIN_QUERIES_MONO + 10, 11);
        let tree = KdTree::build(&pts);
        // Self-join at the mono threshold: dual.
        assert!(select_dual_tree(BatchStrategy::Auto, &pts, 5, &tree));
        // Same size but bichromatic: single (measured slower; see the
        // DUAL_MIN_QUERIES_MONO docs).
        let other = random_points(DUAL_MIN_QUERIES_MONO + 10, 12);
        assert!(!select_dual_tree(BatchStrategy::Auto, &other, 5, &tree));
        // Large k: single.
        assert!(!select_dual_tree(
            BatchStrategy::Auto,
            &pts,
            DUAL_MAX_K + 1,
            &tree
        ));
        // Small batch: single.
        assert!(!select_dual_tree(
            BatchStrategy::Auto,
            &pts[..100],
            5,
            &tree
        ));
        // Forcing wins over everything.
        assert!(select_dual_tree(
            BatchStrategy::DualTree,
            &pts[..2],
            5,
            &tree
        ));
        assert!(!select_dual_tree(BatchStrategy::SingleTree, &pts, 5, &tree));
    }

    #[test]
    fn auto_knn_batch_crosses_the_dual_threshold_transparently() {
        // A self-join big enough for Auto to pick the dual tree must still
        // be bit-identical to the per-query loop (this is the configuration
        // the SR interpolators hit every frame).
        let pts = random_points(DUAL_MIN_QUERIES_MONO + 500, 13);
        let tree = KdTree::build(&pts);
        let mut auto_rows = Neighborhoods::new();
        tree.knn_batch(&pts, 5, &mut auto_rows);
        let mut forced_single = Neighborhoods::new();
        let mut scratch = DualTreeScratch::new();
        tree.knn_batch_with(
            &pts,
            5,
            &mut forced_single,
            BatchStrategy::SingleTree,
            &mut scratch,
        );
        assert_eq!(auto_rows, forced_single);
    }

    /// Counting replica of [`Traversal::pair`]/[`Traversal::scan_pair`]
    /// (box tests, prunes, leaf scans, per-row skips, candidate volume,
    /// push traffic) — these numbers justify the auto-selection policy.
    /// It MUST be updated alongside any change to the real traversal; the
    /// parity property tests catch result drift, this probe only reports
    /// work counts.
    #[test]
    #[ignore = "manual instrumentation probe"]
    fn work_count_probe() {
        let pts = crate::synthetic::humanoid(100_000, 0.5, 3);
        for bichromatic in [false, true] {
            work_count_case(&pts, bichromatic);
        }
    }

    fn work_count_case(pts: &crate::PointCloud, bichromatic: bool) {
        let tree = KdTree::build(pts.positions());
        let jittered: Vec<Point3>;
        let (queries, qtree_owned): (&[Point3], Option<KdTree>) = if bichromatic {
            jittered = pts
                .positions()
                .iter()
                .map(|&p| p + Point3::new(0.013, -0.009, 0.011))
                .collect();
            let q = KdTree::build(&jittered);
            (&jittered, Some(q))
        } else {
            (pts.positions(), None)
        };
        let qtree = qtree_owned.as_ref().unwrap_or(&tree);
        let k = 5;
        let stride = k;
        let mut rows = vec![SENTINEL; queries.len() * stride];
        let mut bounds = vec![f32::INFINITY; qtree.node_count()];
        struct Probe<'a> {
            t: Traversal<'a>,
            pairs: u64,
            pruned: u64,
            scans: u64,
            rows_scanned: u64,
            rows_skipped: u64,
            cands: u64,
            offers: u64,
            accepts: u64,
        }
        struct CountingSink<'a> {
            inner: RowSink<'a>,
            offers: u64,
            accepts: u64,
        }
        impl ScanSink for CountingSink<'_> {
            fn worst_d2(&self) -> f32 {
                self.inner.worst_d2()
            }
            fn push(&mut self, index: usize, d2: f32, pos: Point3) {
                self.offers += 1;
                let len = self.inner.keys.len();
                if pack_key(index, d2) < self.inner.keys[len - 1] {
                    self.accepts += 1;
                }
                self.inner.push(index, d2, pos);
            }
        }
        impl Probe<'_> {
            fn pair(&mut self, qn: u32, rn: u32, d: f32) {
                self.pairs += 1;
                if d > self.t.bounds[qn as usize] {
                    self.pruned += 1;
                    return;
                }
                let qnode = self.t.qtree.node(qn);
                let rnode = self.t.rtree.node(rn);
                match (qnode.is_leaf(), rnode.is_leaf()) {
                    (true, true) => {
                        self.scans += 1;
                        let (qs, qe) = qnode.leaf_range();
                        let (rs, re) = rnode.leaf_range();
                        let rbox = self.t.rtree.node_aabb(rn);
                        let mut bound = 0.0f32;
                        for slot in qs..qe {
                            let q = self.t.qtree.soa().get(slot);
                            let filled = {
                                let row =
                                    &self.t.rows[slot * self.t.stride..(slot + 1) * self.t.stride];
                                f32::from_bits((row[row.len() - 1] >> 32) as u32).is_finite()
                            };
                            let cap = if filled {
                                f32::INFINITY
                            } else {
                                self.t.warm_cap(q)
                            };
                            let row =
                                &mut self.t.rows[slot * self.t.stride..(slot + 1) * self.t.stride];
                            let mut sink = CountingSink {
                                inner: RowSink { keys: row, cap },
                                offers: 0,
                                accepts: 0,
                            };
                            if rbox.distance_squared_to(q) <= sink.worst_d2() {
                                self.rows_scanned += 1;
                                self.cands += (re - rs) as u64;
                                kernels::scan_ids(
                                    self.t.rtree.soa(),
                                    self.t.rtree.order(),
                                    rs,
                                    re,
                                    q,
                                    &mut sink,
                                );
                            } else {
                                self.rows_skipped += 1;
                            }
                            self.offers += sink.offers;
                            self.accepts += sink.accepts;
                            bound = bound.max(sink.worst_d2());
                            self.t.prev_slot = slot;
                        }
                        self.t.bounds[qn as usize] = bound;
                    }
                    (true, false) => {
                        let ((near, dn), (far, df)) = self.t.order_children(qn, rnode.children());
                        self.pair(qn, near, dn);
                        self.pair(qn, far, df);
                    }
                    (false, true) => {
                        let (qa, qb) = qnode.children();
                        self.pair(qa, rn, self.t.child_dist(qa, rn));
                        self.pair(qb, rn, self.t.child_dist(qb, rn));
                        self.t.refresh_bound(qn, qa, qb);
                    }
                    (false, false) => {
                        let (qa, qb) = qnode.children();
                        if self.t.mono && qn == rn {
                            let (ra, rb) = rnode.children();
                            self.pair(qa, ra, 0.0);
                            self.pair(qb, rb, 0.0);
                            self.pair(qa, rb, self.t.child_dist(qa, rb));
                            self.pair(qb, ra, self.t.child_dist(qb, ra));
                        } else {
                            self.pair(qa, rn, self.t.child_dist(qa, rn));
                            self.pair(qb, rn, self.t.child_dist(qb, rn));
                        }
                        self.t.refresh_bound(qn, qa, qb);
                    }
                }
            }
        }
        let mut probe = Probe {
            t: Traversal {
                qtree,
                rtree: &tree,
                rows: &mut rows,
                bounds: &mut bounds,
                stride,
                mono: !bichromatic,
                slot_base: 0,
                prev_slot: usize::MAX,
            },
            pairs: 0,
            pruned: 0,
            scans: 0,
            rows_scanned: 0,
            rows_skipped: 0,
            cands: 0,
            offers: 0,
            accepts: 0,
        };
        probe.pair(qtree.root_id(), tree.root_id(), 0.0);
        let nq = queries.len() as f64;
        println!(
            "bichromatic {bichromatic}: pairs {} pruned {} leaf-scans {} | per query: rows_scanned {:.2} rows_skipped {:.2} cands {:.1} offers {:.2} accepts {:.2}",
            probe.pairs,
            probe.pruned,
            probe.scans,
            probe.rows_scanned as f64 / nq,
            probe.rows_skipped as f64 / nq,
            probe.cands as f64 / nq,
            probe.offers as f64 / nq,
            probe.accepts as f64 / nq,
        );
    }

    #[test]
    #[ignore = "manual timing probe"]
    fn self_join_timing_probe() {
        use std::time::Instant;
        for n in [10_000usize, 100_000] {
            let pts = crate::synthetic::humanoid(n, 0.5, 3);
            let queries = pts.positions();
            let tree = KdTree::build(queries);
            for k in [5usize, 9] {
                let mut scratch = DualTreeScratch::new();
                let mut out = Neighborhoods::with_capacity(queries.len(), queries.len() * k);
                for round in 0..3 {
                    let t = Instant::now();
                    out.clear();
                    tree.knn_batch_with(
                        queries,
                        k,
                        &mut out,
                        BatchStrategy::SingleTree,
                        &mut scratch,
                    );
                    let single = t.elapsed();
                    let t = Instant::now();
                    out.clear();
                    tree.knn_batch_with(
                        queries,
                        k,
                        &mut out,
                        BatchStrategy::DualTree,
                        &mut scratch,
                    );
                    let dual = t.elapsed();
                    println!(
                        "n {n} k {k} round {round}: single {single:?} dual {dual:?} ratio {:.2}",
                        single.as_secs_f64() / dual.as_secs_f64()
                    );
                }
            }
        }
    }

    #[test]
    #[ignore = "manual timing probe"]
    fn bichromatic_timing_probe() {
        use std::time::Instant;
        // Generated-midpoint-style queries: jittered copies of the cloud
        // (what the naive interpolator's new-point pass looks like).
        let pts = crate::synthetic::humanoid(100_000, 0.5, 3);
        let tree = KdTree::build(pts.positions());
        let queries: Vec<Point3> = pts
            .positions()
            .iter()
            .map(|&p| p + Point3::new(0.013, -0.009, 0.011))
            .collect();
        let k = 5;
        let mut scratch = DualTreeScratch::new();
        let mut out = Neighborhoods::with_capacity(queries.len(), queries.len() * k);
        for round in 0..3 {
            let t = Instant::now();
            let mut qtree = KdTree::default();
            qtree.build_in(&queries);
            let build = t.elapsed();
            std::hint::black_box(&qtree);
            let t = Instant::now();
            out.clear();
            tree.knn_batch_with(
                &queries,
                k,
                &mut out,
                BatchStrategy::SingleTree,
                &mut scratch,
            );
            let single = t.elapsed();
            let t = Instant::now();
            out.clear();
            tree.knn_batch_with(&queries, k, &mut out, BatchStrategy::DualTree, &mut scratch);
            let dual = t.elapsed();
            println!(
                "round {round}: single {single:?} dual(+qtree build) {dual:?} qtree_build alone {build:?} ratio {:.2}",
                single.as_secs_f64() / dual.as_secs_f64()
            );
        }
    }
}

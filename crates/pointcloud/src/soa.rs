//! Structure-of-arrays position storage for the neighbor-search hot loops.
//!
//! Every spatial backend in this crate answers kNN queries by scanning small
//! contiguous runs of points (a kd-tree leaf, a voxel cell, an octree cell).
//! With `&[Point3]` those scans are strided 12-byte loads that the compiler
//! cannot turn into full-width vector arithmetic. [`SoaPositions`] stores the
//! same points as three separate coordinate lanes (`x[]`, `y[]`, `z[]`), each
//! 32-byte aligned and padded past the end, so a leaf scan becomes a
//! streaming 8-wide squared-distance kernel (see [`crate::kernels`]) with no
//! shuffle or gather work.
//!
//! Backends store their points here in *visit order* (kd-tree leaf order,
//! voxel/octree cell-slab order) next to a `u32` id array mapping each slot
//! back to the original point index, so a scan touches two perfectly
//! sequential streams.

use crate::point::Point3;

/// Vector width of the distance kernels: 8 `f32` lanes (one AVX2 register).
pub const LANES: usize = 8;

/// One aligned block of coordinate lanes. `repr(C, align(32))` pins every
/// block — and therefore the start of each lane array — to a 32-byte
/// boundary, matching the AVX2 register width.
#[derive(Debug, Clone, Copy)]
#[repr(C, align(32))]
struct LaneBlock([f32; LANES]);

/// Padding value for the unused tail lanes. `INFINITY` guarantees a padded
/// slot can never produce a smaller squared distance than a real point, so
/// full-width loads that read past `len` are harmless by construction.
const PAD: f32 = f32::INFINITY;

/// One coordinate lane: a `Vec` of aligned blocks exposed as a flat `&[f32]`.
#[derive(Debug, Clone, Default)]
struct Lane {
    blocks: Vec<LaneBlock>,
}

impl Lane {
    /// Grows to at least `blocks` blocks, padding new storage.
    fn reset(&mut self, blocks: usize) {
        self.blocks.clear();
        self.blocks.resize(blocks, LaneBlock([PAD; LANES]));
    }

    /// The lane as a flat, 32-byte-aligned `&[f32]` of `blocks * LANES`.
    #[inline]
    fn as_flat(&self) -> &[f32] {
        // SAFETY: `LaneBlock` is `repr(C)` over `[f32; LANES]`, so a
        // contiguous `[LaneBlock]` is layout-identical to a contiguous
        // `[f32]` of `LANES ×` the length.
        unsafe {
            std::slice::from_raw_parts(
                self.blocks.as_ptr().cast::<f32>(),
                self.blocks.len() * LANES,
            )
        }
    }

    /// Mutable flat view.
    #[inline]
    fn as_flat_mut(&mut self) -> &mut [f32] {
        // SAFETY: same layout argument as [`Self::as_flat`].
        unsafe {
            std::slice::from_raw_parts_mut(
                self.blocks.as_mut_ptr().cast::<f32>(),
                self.blocks.len() * LANES,
            )
        }
    }
}

/// Separate x/y/z coordinate lanes, 32-byte aligned and lane-padded.
///
/// The arrays are padded with [`f32::INFINITY`] to at least two full blocks
/// past `len`, so a kernel may always read a `2 × LANES`-wide window
/// starting at any valid slot without bounds concern — padded lanes lose
/// every distance comparison.
///
/// # Example
///
/// ```
/// use volut_pointcloud::{soa::SoaPositions, Point3};
/// let pts = [Point3::new(1.0, 2.0, 3.0), Point3::new(4.0, 5.0, 6.0)];
/// let mut soa = SoaPositions::default();
/// soa.fill(&pts);
/// assert_eq!(soa.len(), 2);
/// assert_eq!(soa.get(1), pts[1]);
/// assert!(soa.xs().len() >= soa.len() + 8);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SoaPositions {
    x: Lane,
    y: Lane,
    z: Lane,
    len: usize,
}

impl SoaPositions {
    /// Number of stored points (excluding padding).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no points are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Resets storage for `n` points: lanes sized to `n` rounded up to a
    /// block boundary **plus two extra blocks**, everything padded. The
    /// extra blocks are what let kernels issue a load of up to `2 × LANES`
    /// lanes from any slot `< n` unconditionally (the AVX-512 path reads
    /// 16-wide windows).
    fn reset(&mut self, n: usize) {
        let blocks = n / LANES + 3;
        self.x.reset(blocks);
        self.y.reset(blocks);
        self.z.reset(blocks);
        self.len = n;
    }

    /// Rebuilds the lanes from `points` in their given order, reusing the
    /// existing allocations.
    pub fn fill(&mut self, points: &[Point3]) {
        self.reset(points.len());
        let (xs, ys, zs) = (
            self.x.as_flat_mut(),
            self.y.as_flat_mut(),
            self.z.as_flat_mut(),
        );
        for (i, p) in points.iter().enumerate() {
            xs[i] = p.x;
            ys[i] = p.y;
            zs[i] = p.z;
        }
    }

    /// Rebuilds the lanes as the permutation `points[order[i]]` — the
    /// "one contiguous reordered copy" backends use to store their points in
    /// leaf-visit / cell-slab order.
    ///
    /// # Panics
    /// Panics when an entry of `order` is out of bounds for `points`.
    pub fn fill_permuted(&mut self, points: &[Point3], order: &[u32]) {
        self.reset(order.len());
        let (xs, ys, zs) = (
            self.x.as_flat_mut(),
            self.y.as_flat_mut(),
            self.z.as_flat_mut(),
        );
        for (i, &src) in order.iter().enumerate() {
            let p = points[src as usize];
            xs[i] = p.x;
            ys[i] = p.y;
            zs[i] = p.z;
        }
    }

    /// The x lane including padding (length ≥ `len + LANES`, 32-byte aligned).
    #[inline]
    pub fn xs(&self) -> &[f32] {
        self.x.as_flat()
    }

    /// The y lane including padding.
    #[inline]
    pub fn ys(&self) -> &[f32] {
        self.y.as_flat()
    }

    /// The z lane including padding.
    #[inline]
    pub fn zs(&self) -> &[f32] {
        self.z.as_flat()
    }

    /// Capacity (in bytes) currently reserved by the three lanes — used by
    /// scratch-reuse assertions (steady-state rebuilds of same-size point
    /// sets must not grow it).
    pub fn reserved_bytes(&self) -> usize {
        (self.x.blocks.capacity() + self.y.blocks.capacity() + self.z.blocks.capacity())
            * std::mem::size_of::<LaneBlock>()
    }

    /// Reassembles the point at slot `i`.
    ///
    /// # Panics
    /// Panics when `i >= self.len()`.
    #[inline]
    pub fn get(&self, i: usize) -> Point3 {
        assert!(i < self.len, "SoaPositions index out of range: {i}");
        Point3::new(
            self.x.as_flat()[i],
            self.y.as_flat()[i],
            self.z.as_flat()[i],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_roundtrip_and_padding() {
        let pts: Vec<Point3> = (0..13)
            .map(|i| Point3::new(i as f32, -(i as f32), 0.5 * i as f32))
            .collect();
        let mut soa = SoaPositions::default();
        soa.fill(&pts);
        assert_eq!(soa.len(), 13);
        for (i, &p) in pts.iter().enumerate() {
            assert_eq!(soa.get(i), p);
        }
        // Padding: at least two full blocks past len, all +inf.
        assert!(soa.xs().len() >= 13 + 2 * LANES);
        assert!(soa.xs()[13..].iter().all(|&v| v == f32::INFINITY));
        assert!(soa.ys()[13..].iter().all(|&v| v == f32::INFINITY));
        assert!(soa.zs()[13..].iter().all(|&v| v == f32::INFINITY));
    }

    #[test]
    fn fill_permuted_applies_order() {
        let pts: Vec<Point3> = (0..6).map(|i| Point3::splat(i as f32)).collect();
        let order = [5u32, 0, 3];
        let mut soa = SoaPositions::default();
        soa.fill_permuted(&pts, &order);
        assert_eq!(soa.len(), 3);
        assert_eq!(soa.get(0), pts[5]);
        assert_eq!(soa.get(1), pts[0]);
        assert_eq!(soa.get(2), pts[3]);
    }

    #[test]
    fn refill_reuses_and_repads() {
        let mut soa = SoaPositions::default();
        soa.fill(&[Point3::ONE; 20]);
        soa.fill(&[Point3::ZERO; 3]);
        assert_eq!(soa.len(), 3);
        // Slots beyond the new length must be padding again, not stale data.
        assert!(soa.xs()[3..].iter().all(|&v| v == f32::INFINITY));
        soa.fill(&[]);
        assert!(soa.is_empty());
        assert!(soa.xs().len() >= LANES);
    }

    #[test]
    fn lanes_are_32_byte_aligned() {
        let mut soa = SoaPositions::default();
        soa.fill(&[Point3::ONE; 9]);
        for lane in [soa.xs(), soa.ys(), soa.zs()] {
            assert_eq!(lane.as_ptr() as usize % 32, 0);
        }
    }
}

//! Flat CSR-style neighborhood storage.
//!
//! The SR pipeline attaches a small list of neighbor indices to every
//! generated point. Storing those lists as `Vec<Vec<usize>>` costs one heap
//! allocation per point and scatters the data across the heap; at the
//! 100K-points-per-frame scale the paper targets, the allocator traffic
//! alone dominates the refinement stage. [`Neighborhoods`] stores all lists
//! in two flat arrays (classic compressed-sparse-row layout):
//!
//! ```text
//! indices:  [n00 n01 n02 | n10 n11 | n20 n21 n22 n23 | ...]
//! offsets:  [0, 3, 5, 9, ...]          (row i = indices[offsets[i]..offsets[i+1]])
//! ```
//!
//! Rows are append-only; indices are `u32` (a frame with more than 4 billion
//! source points is not a realistic input). [`NeighborhoodsView`] is the
//! borrowed form that batch kernels consume; it can be sliced into row
//! sub-ranges so parallel workers each see a zero-copy window.

/// Flat CSR storage of per-point neighbor index lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Neighborhoods {
    indices: Vec<u32>,
    offsets: Vec<u32>,
}

impl Default for Neighborhoods {
    /// Same as [`Neighborhoods::new`] — the offsets array always carries the
    /// leading `0` sentinel (`rows + 1` entries), even when empty.
    fn default() -> Self {
        Self::new()
    }
}

impl Neighborhoods {
    /// Creates an empty container.
    pub fn new() -> Self {
        Self {
            indices: Vec::new(),
            offsets: vec![0],
        }
    }

    /// Creates an empty container with space reserved for `rows` lists
    /// holding `total_indices` entries overall.
    pub fn with_capacity(rows: usize, total_indices: usize) -> Self {
        let mut offsets = Vec::with_capacity(rows + 1);
        offsets.push(0);
        Self {
            indices: Vec::with_capacity(total_indices),
            offsets,
        }
    }

    /// Reserves space for `rows` additional rows holding `total_indices`
    /// additional entries overall (used by batched kNN writers so pushing a
    /// whole batch of rows performs at most one reallocation per array).
    pub fn reserve_rows(&mut self, rows: usize, total_indices: usize) {
        self.offsets.reserve(rows);
        self.indices.reserve(total_indices);
    }

    /// Number of rows (neighbor lists).
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Returns `true` when no rows have been pushed.
    pub fn is_empty(&self) -> bool {
        self.offsets.len() == 1
    }

    /// Total number of stored neighbor indices across all rows.
    pub fn total_indices(&self) -> usize {
        self.indices.len()
    }

    /// Appends one neighbor list.
    ///
    /// # Panics
    /// Panics when an index does not fit in `u32` or the total index count
    /// overflows `u32` (frames are far below both limits).
    pub fn push_row<I: IntoIterator<Item = usize>>(&mut self, row: I) {
        for idx in row {
            self.indices
                .push(u32::try_from(idx).expect("neighbor index fits in u32"));
        }
        self.offsets
            .push(u32::try_from(self.indices.len()).expect("index count fits in u32"));
    }

    /// Appends one neighbor list already expressed as `u32`s.
    pub fn push_row_u32(&mut self, row: &[u32]) {
        self.indices.extend_from_slice(row);
        self.offsets
            .push(u32::try_from(self.indices.len()).expect("index count fits in u32"));
    }

    /// Appends one neighbor list from a `u32` iterator.
    pub fn push_row_u32_iter<I: IntoIterator<Item = u32>>(&mut self, row: I) {
        self.indices.extend(row);
        self.offsets
            .push(u32::try_from(self.indices.len()).expect("index count fits in u32"));
    }

    /// Appends `rows` rows of uniform `stride` entries each and returns the
    /// mutable slice of their freshly reserved index storage
    /// (`rows * stride` entries, zero-filled) for the caller to fill with
    /// scatter writes — the batched kNN driver and the SR engine's
    /// incremental row-reuse path emit every row directly into its final
    /// location this way, with no intermediate buffer.
    ///
    /// # Panics
    /// Panics when the resulting index count overflows `u32`.
    pub fn push_uniform_rows(&mut self, rows: usize, stride: usize) -> &mut [u32] {
        let base = self.indices.len();
        let total = rows * stride;
        u32::try_from(base + total).expect("index count fits in u32");
        self.indices.resize(base + total, 0);
        self.offsets.reserve(rows);
        let mut off = base as u32;
        for _ in 0..rows {
            off += stride as u32;
            self.offsets.push(off);
        }
        &mut self.indices[base..]
    }

    /// Appends all rows of `other` (used to merge per-worker partial CSRs
    /// after a parallel build — two `extend`s plus an offset rebase).
    pub fn append(&mut self, other: &Neighborhoods) {
        let base = u32::try_from(self.indices.len()).expect("index count fits in u32");
        self.indices.extend_from_slice(&other.indices);
        self.offsets
            .extend(other.offsets[1..].iter().map(|&o| base + o));
    }

    /// Removes all rows, keeping the allocations (for frame-scratch reuse).
    pub fn clear(&mut self) {
        self.indices.clear();
        self.offsets.clear();
        self.offsets.push(0);
    }

    /// Row `i` as a slice of neighbor indices.
    ///
    /// # Panics
    /// Panics when `i >= self.len()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[u32] {
        let start = self.offsets[i] as usize;
        let end = self.offsets[i + 1] as usize;
        &self.indices[start..end]
    }

    /// Iterator over all rows.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.len()).map(move |i| self.row(i))
    }

    /// Borrowed view over all rows.
    #[inline]
    pub fn view(&self) -> NeighborhoodsView<'_> {
        NeighborhoodsView {
            indices: &self.indices,
            offsets: &self.offsets,
        }
    }

    /// Builds the CSR form from nested per-point lists.
    pub fn from_nested(nested: &[Vec<usize>]) -> Self {
        let total: usize = nested.iter().map(Vec::len).sum();
        let mut out = Self::with_capacity(nested.len(), total);
        for row in nested {
            out.push_row(row.iter().copied());
        }
        out
    }

    /// Expands back into nested per-point lists (tests / interop).
    pub fn to_nested(&self) -> Vec<Vec<usize>> {
        self.iter()
            .map(|row| row.iter().map(|&i| i as usize).collect())
            .collect()
    }

    /// Capacity (bytes) currently reserved by the two CSR arrays — used by
    /// scratch-reuse assertions (steady-state frames must not grow it).
    pub fn reserved_bytes(&self) -> usize {
        (self.indices.capacity() + self.offsets.capacity()) * std::mem::size_of::<u32>()
    }

    /// The raw flat index array.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// The raw offsets array (`len() + 1` entries, starting at 0).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }
}

impl<'a> IntoIterator for &'a Neighborhoods {
    type Item = &'a [u32];
    type IntoIter = NeighborhoodsIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        NeighborhoodsIter {
            view: self.view(),
            next: 0,
        }
    }
}

/// Iterator over the rows of a [`Neighborhoods`] / [`NeighborhoodsView`].
#[derive(Debug, Clone)]
pub struct NeighborhoodsIter<'a> {
    view: NeighborhoodsView<'a>,
    next: usize,
}

impl<'a> Iterator for NeighborhoodsIter<'a> {
    type Item = &'a [u32];

    fn next(&mut self) -> Option<&'a [u32]> {
        if self.next < self.view.len() {
            let row = self.view.row(self.next);
            self.next += 1;
            Some(row)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.view.len() - self.next;
        (remaining, Some(remaining))
    }
}

/// Borrowed, sliceable window over CSR neighborhoods.
///
/// `offsets` always has one more entry than the number of rows; offsets are
/// absolute positions into the *original* index array, so a sliced view
/// subtracts its base offset on row access.
#[derive(Debug, Clone, Copy)]
pub struct NeighborhoodsView<'a> {
    indices: &'a [u32],
    offsets: &'a [u32],
}

impl<'a> NeighborhoodsView<'a> {
    /// Builds a view from raw CSR parts.
    ///
    /// # Panics
    /// Panics when `offsets` is empty (a valid view has `rows + 1` offsets).
    pub fn from_raw(indices: &'a [u32], offsets: &'a [u32]) -> Self {
        assert!(
            !offsets.is_empty(),
            "offsets must contain at least one entry"
        );
        Self { indices, offsets }
    }

    /// Number of rows in this view.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Returns `true` when the view contains no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.offsets.len() == 1
    }

    /// Row `i` of the view.
    ///
    /// # Panics
    /// Panics when `i >= self.len()`.
    #[inline]
    pub fn row(&self, i: usize) -> &'a [u32] {
        let base = self.offsets[0] as usize;
        let start = self.offsets[i] as usize - base;
        let end = self.offsets[i + 1] as usize - base;
        &self.indices[start..end]
    }

    /// Zero-copy sub-view over rows `start..end` (for parallel chunking).
    ///
    /// # Panics
    /// Panics when the range is out of bounds or reversed.
    pub fn slice_rows(&self, start: usize, end: usize) -> NeighborhoodsView<'a> {
        assert!(start <= end && end <= self.len(), "row range out of bounds");
        let base = self.offsets[0] as usize;
        let lo = self.offsets[start] as usize - base;
        let hi = self.offsets[end] as usize - base;
        NeighborhoodsView {
            indices: &self.indices[lo..hi],
            offsets: &self.offsets[start..=end],
        }
    }

    /// Iterator over the view's rows.
    pub fn iter(&self) -> NeighborhoodsIter<'a> {
        NeighborhoodsIter {
            view: *self,
            next: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Neighborhoods {
        let mut n = Neighborhoods::new();
        n.push_row([3, 1, 4]);
        n.push_row(std::iter::empty());
        n.push_row([1, 5]);
        n
    }

    #[test]
    fn default_upholds_offsets_invariant() {
        let d = Neighborhoods::default();
        assert_eq!(d.offsets(), &[0]);
        assert_eq!(d.len(), 0);
        let mut d = d;
        d.push_row([1usize, 2]);
        assert_eq!(d.len(), 1);
        assert_eq!(d.row(0), &[1, 2]);
    }

    #[test]
    fn rows_roundtrip() {
        let n = sample();
        assert_eq!(n.len(), 3);
        assert!(!n.is_empty());
        assert_eq!(n.total_indices(), 5);
        assert_eq!(n.row(0), &[3, 1, 4]);
        assert_eq!(n.row(1), &[] as &[u32]);
        assert_eq!(n.row(2), &[1, 5]);
    }

    #[test]
    fn offsets_invariants() {
        let n = sample();
        let offsets = n.offsets();
        assert_eq!(offsets[0], 0);
        assert_eq!(*offsets.last().unwrap() as usize, n.total_indices());
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be monotone"
        );
        assert_eq!(offsets.len(), n.len() + 1);
    }

    #[test]
    fn nested_roundtrip() {
        let nested = vec![vec![7usize, 2], vec![], vec![0, 1, 2, 3]];
        let n = Neighborhoods::from_nested(&nested);
        assert_eq!(n.to_nested(), nested);
    }

    #[test]
    fn clear_keeps_capacity_and_resets_rows() {
        let mut n = sample();
        let cap = n.indices().len();
        n.clear();
        assert!(n.is_empty());
        assert_eq!(n.len(), 0);
        assert!(n.indices.capacity() >= cap);
        n.push_row([9usize]);
        assert_eq!(n.row(0), &[9]);
    }

    #[test]
    fn view_slicing_matches_owner() {
        let n = sample();
        let v = n.view();
        assert_eq!(v.len(), 3);
        let tail = v.slice_rows(1, 3);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail.row(0), &[] as &[u32]);
        assert_eq!(tail.row(1), &[1, 5]);
        let empty = v.slice_rows(1, 1);
        assert!(empty.is_empty());
        // Sub-views of sub-views still agree.
        let nested = tail.slice_rows(1, 2);
        assert_eq!(nested.row(0), &[1, 5]);
    }

    #[test]
    fn iteration_yields_all_rows() {
        let n = sample();
        let rows: Vec<Vec<u32>> = n.iter().map(<[u32]>::to_vec).collect();
        assert_eq!(rows, vec![vec![3, 1, 4], vec![], vec![1, 5]]);
        let via_into: usize = (&n).into_iter().count();
        assert_eq!(via_into, 3);
        let via_view: usize = n.view().iter().map(<[u32]>::len).sum();
        assert_eq!(via_view, 5);
    }

    #[test]
    fn append_matches_sequential_pushes() {
        let mut a = sample();
        let mut b = Neighborhoods::new();
        b.push_row([8usize]);
        b.push_row([2usize, 6]);
        a.append(&b);
        assert_eq!(a.len(), 5);
        assert_eq!(a.row(3), &[8]);
        assert_eq!(a.row(4), &[2, 6]);
        assert_eq!(*a.offsets().last().unwrap() as usize, a.total_indices());
        // Appending an empty container is a no-op.
        let before = a.clone();
        a.append(&Neighborhoods::new());
        assert_eq!(a, before);
    }

    #[test]
    fn push_row_u32_matches_push_row() {
        let mut a = Neighborhoods::new();
        a.push_row([1usize, 2, 3]);
        let mut b = Neighborhoods::new();
        b.push_row_u32(&[1, 2, 3]);
        assert_eq!(a, b);
    }
}

//! Frame-to-frame deltas for temporally coherent streaming.
//!
//! Volumetric streams rarely replace a frame wholesale: consecutive frames
//! share most of their geometry (static background chunks, slowly moving
//! subjects), and the points that do change arrive as chunked removals and
//! insertions. [`FrameDelta`] captures that relationship explicitly — which
//! old points were **removed**, which new points were **inserted**, and how
//! every *surviving* point's index moved — so downstream consumers (the
//! incremental kd-tree patch of [`crate::kdtree::KdTree::patch`], the SR
//! engine's incremental kNN row reuse) can update their state in `O(churn)`
//! instead of recomputing in `O(n)`.
//!
//! A delta can come from two places:
//! * [`FrameDelta::diff`] — an `O(n)` bitwise position diff between two
//!   frames, for callers that only hold the raw clouds;
//! * [`FrameDelta::from_parts`] — an explicit removal/insertion description
//!   from a streaming layer that already knows what changed (chunk
//!   scheduling, delta-encoded transport).
//!
//! # The order-preservation invariant
//!
//! Every delta upholds one invariant the incremental consumers rely on:
//! **surviving points appear in the same relative order in both frames**,
//! and each survivor's position is bitwise identical across frames. Exact
//! kNN results break distance ties by ascending index, so preserving the
//! survivors' relative order is what lets cached neighbor rows be remapped
//! to new indices *without* re-deciding any tie — the remapped row is
//! bit-identical to a fresh query. [`FrameDelta::diff`] constructs only such
//! deltas (points that moved out of order are conservatively reported as a
//! removal plus an insertion), and [`FrameDelta::from_parts`] derives the
//! survivor mapping from the removal/insertion sets, which makes the
//! invariant hold by construction.

use crate::point::Point3;
use std::fmt;

/// Sentinel in the old→new survivor map marking a removed point.
pub const REMOVED: u32 = u32::MAX;

/// Why [`FrameDelta::verify`] rejected a delta against a frame pair.
///
/// Each variant names the check that failed and where, so a streaming layer
/// can distinguish a transport-mangled delta (length mismatches, truncation)
/// from genuine cache poisoning (a survivor whose bits changed) and report
/// the failure instead of silently falling back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaError {
    /// The old frame has a different point count than the delta claims.
    OldLenMismatch {
        /// Length the delta was built for.
        expected: usize,
        /// Length of the frame actually supplied.
        got: usize,
    },
    /// The new frame has a different point count than the delta claims.
    NewLenMismatch {
        /// Length the delta was built for.
        expected: usize,
        /// Length of the frame actually supplied.
        got: usize,
    },
    /// The survivor map is not strictly increasing at this old index — the
    /// order-preservation invariant (see the module docs) is broken.
    OrderViolation {
        /// Old-frame index whose mapping is out of order.
        old_index: usize,
    },
    /// A claimed survivor's position is not bitwise identical across frames.
    PositionMismatch {
        /// Old-frame index of the mismatching survivor.
        old_index: usize,
        /// New-frame index the delta maps it to.
        new_index: usize,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DeltaError::OldLenMismatch { expected, got } => {
                write!(f, "old frame has {got} points, delta expects {expected}")
            }
            DeltaError::NewLenMismatch { expected, got } => {
                write!(f, "new frame has {got} points, delta expects {expected}")
            }
            DeltaError::OrderViolation { old_index } => {
                write!(
                    f,
                    "survivor map not strictly increasing at old index {old_index}"
                )
            }
            DeltaError::PositionMismatch {
                old_index,
                new_index,
            } => write!(
                f,
                "survivor position differs between old index {old_index} and new index {new_index}"
            ),
        }
    }
}

impl std::error::Error for DeltaError {}

/// The difference between two consecutive frames of one stream: removals
/// from the old frame, insertions into the new frame, and the index mapping
/// of the surviving points.
///
/// # Example
///
/// ```
/// use volut_pointcloud::{delta::FrameDelta, Point3};
/// let old = vec![Point3::ZERO, Point3::ONE, Point3::splat(2.0)];
/// // Point 1 removed, a new point appended at the end.
/// let new = vec![Point3::ZERO, Point3::splat(2.0), Point3::splat(9.0)];
/// let d = FrameDelta::diff(&old, &new);
/// assert_eq!(d.removed(), &[1]);
/// assert_eq!(d.inserted(), &[2]);
/// assert_eq!(d.map_old(0), Some(0));
/// assert_eq!(d.map_old(1), None);
/// assert_eq!(d.map_old(2), Some(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameDelta {
    old_len: usize,
    new_len: usize,
    /// Indices into the old frame that are gone, ascending.
    removed: Vec<u32>,
    /// Indices into the new frame that are new, ascending.
    inserted: Vec<u32>,
    /// For every old index, the new index of the same point, or [`REMOVED`].
    /// Strictly increasing over the survivors (the order invariant).
    old_to_new: Vec<u32>,
}

impl FrameDelta {
    /// Number of points in the old frame.
    pub fn old_len(&self) -> usize {
        self.old_len
    }

    /// Number of points in the new frame.
    pub fn new_len(&self) -> usize {
        self.new_len
    }

    /// Old-frame indices of the removed points, ascending.
    pub fn removed(&self) -> &[u32] {
        &self.removed
    }

    /// New-frame indices of the inserted points, ascending.
    pub fn inserted(&self) -> &[u32] {
        &self.inserted
    }

    /// The full old→new survivor map (`len == old_len()`, [`REMOVED`] marks
    /// removed points). Strictly increasing over the surviving entries.
    pub fn old_to_new(&self) -> &[u32] {
        &self.old_to_new
    }

    /// New index of old point `i`, or `None` when it was removed.
    #[inline]
    pub fn map_old(&self, i: usize) -> Option<usize> {
        match self.old_to_new[i] {
            REMOVED => None,
            n => Some(n as usize),
        }
    }

    /// Number of surviving points.
    pub fn survivors(&self) -> usize {
        self.old_len - self.removed.len()
    }

    /// `true` when nothing changed (no removals, no insertions).
    pub fn is_identity(&self) -> bool {
        self.removed.is_empty() && self.inserted.is_empty()
    }

    /// Churn fraction relative to the larger frame: the share of points that
    /// are *not* carried over.
    pub fn churn(&self) -> f64 {
        let n = self.old_len.max(self.new_len);
        if n == 0 {
            0.0
        } else {
            self.removed.len().max(self.inserted.len()) as f64 / n as f64
        }
    }

    /// Builds a delta from an explicit removal/insertion description — the
    /// streaming-layer API for callers that already know what changed.
    ///
    /// `removed` are old-frame indices, `inserted` new-frame indices; both
    /// must be ascending, duplicate-free and in bounds, and the counts must
    /// be consistent (`old_len - removed + inserted == new_len`). The
    /// survivor mapping is derived positionally: survivors keep their
    /// relative order, with the inserted slots interleaved at the given new
    /// indices. Returns `None` when the description is inconsistent.
    pub fn from_parts(
        old_len: usize,
        new_len: usize,
        removed: Vec<u32>,
        inserted: Vec<u32>,
    ) -> Option<FrameDelta> {
        if removed.len() > old_len || inserted.len() > new_len {
            return None;
        }
        if old_len - removed.len() + inserted.len() != new_len {
            return None;
        }
        let ascending_in_bounds = |ids: &[u32], len: usize| {
            ids.iter().all(|&i| (i as usize) < len) && ids.windows(2).all(|w| w[0] < w[1])
        };
        if !ascending_in_bounds(&removed, old_len) || !ascending_in_bounds(&inserted, new_len) {
            return None;
        }
        // Walk old and new indices together, skipping removed old slots and
        // inserted new slots; the remaining pairs are the survivor mapping.
        let mut old_to_new = vec![REMOVED; old_len];
        let mut ri = 0usize;
        let mut ii = 0usize;
        let mut new_i = 0usize;
        for (old_i, slot) in old_to_new.iter_mut().enumerate() {
            if ri < removed.len() && removed[ri] as usize == old_i {
                ri += 1;
                continue;
            }
            while ii < inserted.len() && inserted[ii] as usize == new_i {
                ii += 1;
                new_i += 1;
            }
            debug_assert!(new_i < new_len, "counts were validated above");
            *slot = new_i as u32;
            new_i += 1;
        }
        Some(FrameDelta {
            old_len,
            new_len,
            removed,
            inserted,
            old_to_new,
        })
    }

    /// Computes the delta between two frames by bitwise position comparison
    /// in `O(n)`.
    ///
    /// The diff is a two-pointer walk over both frames: bitwise-equal
    /// positions at the cursors match as survivors; at a mismatch, a
    /// position whose key count in the *other frame's remaining suffix* is
    /// zero is a removal (old side) or an insertion (new side); positions
    /// with matches remaining on both sides but out of order are
    /// conservatively churned as a removal *plus* an insertion, so the order
    /// invariant (see the module docs) always holds, with a one-step
    /// lookahead that re-synchronizes the walk across an isolated
    /// removal/insertion before falling back to churning both sides. The
    /// count maps are multiset-aware and consumed as the cursors advance, so
    /// bitwise-duplicate points (quantized scans are full of them) no longer
    /// read as "present elsewhere" after their copies have been consumed —
    /// the over-churn the whole-frame membership sets used to cause. Counts
    /// are still collision-lossy over folded 32-bit keys, but a collision
    /// only *inflates* a count, which only pushes a mismatch into the
    /// conservative churn branch; a zero remaining count is certain absence,
    /// and survivors always require exact equality at the cursors. The maps
    /// are built lazily at the first mismatch, so the matching fast path of
    /// low-churn frames never touches them, and identical frames
    /// short-circuit on one slice compare.
    pub fn diff(old: &[Point3], new: &[Point3]) -> FrameDelta {
        Self::diff_bounded(old, new, 0).expect("a zero survivor bound never aborts")
    }

    /// [`FrameDelta::diff`] with an early abort: returns `None` as soon as
    /// the walk can no longer produce at least `min_survivors` surviving
    /// points — the per-frame guard of consumers (like the SR engine's
    /// temporal layer) that fall back to a full recompute below a survivor
    /// threshold, so a scene cut pays about half a diff instead of a full
    /// one.
    pub fn diff_bounded(
        old: &[Point3],
        new: &[Point3],
        min_survivors: usize,
    ) -> Option<FrameDelta> {
        if old.len().min(new.len()) < min_survivors {
            return None;
        }
        let bitwise_identical = old.len() == new.len()
            && old
                .iter()
                .zip(new)
                .all(|(&a, &b)| position_key(a) == position_key(b));
        if bitwise_identical {
            return FrameDelta::from_parts(old.len(), new.len(), Vec::new(), Vec::new());
        }
        // Sampled survivor ceiling: an old position absent from the new
        // frame's membership set certainly cannot survive (membership is a
        // superset of survival — collisions only produce false *positives*),
        // so a low sampled hit rate proves the bound unreachable long before
        // the walk would. The factor-of-two slack makes a spurious abort of
        // a genuinely eligible frame a multi-sigma sampling event; even then
        // the caller merely falls back to a full recompute.
        if min_survivors > 0 && old.len() >= 1024 {
            let new_members = KeySet::over(new);
            let samples = 512usize;
            let step = old.len() / samples;
            let hits = old
                .iter()
                .step_by(step)
                .take(samples)
                .filter(|&&p| new_members.contains(position_key(p)))
                .count();
            if 2 * hits * old.len() < min_survivors * samples {
                return None;
            }
        }
        let mut removed = Vec::new();
        let mut inserted = Vec::new();
        let mut old_to_new = vec![REMOVED; old.len()];
        let mut i = 0usize;
        let mut j = 0usize;
        let mut matched = 0usize;
        // Remaining-suffix key counts for both frames, built lazily at the
        // first mismatch (over `old[i..]` / `new[j..]`) and decremented as
        // the cursors consume points, so they always describe exactly what
        // is still ahead of the walk.
        let mut counts: Option<(KeyCounts, KeyCounts)> = None;
        while i < old.len() && j < new.len() {
            let oi = position_key(old[i]);
            let nj = position_key(new[j]);
            if oi == nj {
                old_to_new[i] = j as u32;
                matched += 1;
                if let Some((old_counts, new_counts)) = &mut counts {
                    old_counts.consume(oi);
                    new_counts.consume(nj);
                }
                i += 1;
                j += 1;
                continue;
            }
            let (old_counts, new_counts) = counts
                .get_or_insert_with(|| (KeyCounts::over(&old[i..]), KeyCounts::over(&new[j..])));
            let old_can_still_match = new_counts.remaining(oi) > 0;
            let new_can_still_match = old_counts.remaining(nj) > 0;
            if !old_can_still_match {
                // No copy of this position remains ahead in the new frame:
                // a certain removal (collisions only inflate counts, so a
                // zero remaining count cannot be a false negative).
                removed.push(i as u32);
                old_counts.consume(oi);
                i += 1;
            } else if !new_can_still_match {
                inserted.push(j as u32);
                new_counts.consume(nj);
                j += 1;
            } else if i + 1 < old.len() && position_key(old[i + 1]) == nj {
                // One-step lookahead realignment: the next old point already
                // matches the new cursor, so treating `old[i]` as removed
                // re-synchronizes the walk immediately. This is what keeps
                // duplicate-heavy frames churn-proportional — a removed
                // point whose bit pattern survives in *other* copies would
                // otherwise never take the certain-removal branch above.
                removed.push(i as u32);
                old_counts.consume(oi);
                i += 1;
            } else if j + 1 < new.len() && position_key(new[j + 1]) == oi {
                // Mirror image: the next new point matches the old cursor,
                // so `new[j]` is an insertion.
                inserted.push(j as u32);
                new_counts.consume(nj);
                j += 1;
            } else {
                // Both positions still have matches ahead on the other
                // side and no one-step realignment exists: a reordering (or
                // a key collision — see above). Churn both — strictly more
                // invalidation than a smarter matching would report, never
                // less.
                removed.push(i as u32);
                old_counts.consume(oi);
                i += 1;
                inserted.push(j as u32);
                new_counts.consume(nj);
                j += 1;
            }
            // The most optimistic finish matches everything still unseen.
            if matched + (old.len() - i).min(new.len() - j) < min_survivors {
                return None;
            }
        }
        removed.extend(i as u32..old.len() as u32);
        inserted.extend(j as u32..new.len() as u32);
        Some(FrameDelta {
            old_len: old.len(),
            new_len: new.len(),
            removed,
            inserted,
            old_to_new,
        })
    }

    /// Verifies this delta against the actual frames: lengths must match and
    /// every survivor's position must be bitwise identical across frames.
    /// One linear pass — the cheap safety net for externally supplied deltas
    /// (a wrong delta would silently corrupt incremental results). On
    /// rejection the returned [`DeltaError`] names the first failing check
    /// and where it failed.
    pub fn verify(&self, old: &[Point3], new: &[Point3]) -> Result<(), DeltaError> {
        if old.len() != self.old_len {
            return Err(DeltaError::OldLenMismatch {
                expected: self.old_len,
                got: old.len(),
            });
        }
        if new.len() != self.new_len {
            return Err(DeltaError::NewLenMismatch {
                expected: self.new_len,
                got: new.len(),
            });
        }
        let mut prev_new = None;
        for (old_i, &new_i) in self.old_to_new.iter().enumerate() {
            if new_i == REMOVED {
                continue;
            }
            // Strictly increasing (the order invariant) and bitwise equal.
            if new_i as usize >= self.new_len || prev_new.is_some_and(|p| new_i <= p) {
                return Err(DeltaError::OrderViolation { old_index: old_i });
            }
            prev_new = Some(new_i);
            if position_key(old[old_i]) != position_key(new[new_i as usize]) {
                return Err(DeltaError::PositionMismatch {
                    old_index: old_i,
                    new_index: new_i as usize,
                });
            }
        }
        Ok(())
    }

    /// Composes this delta (frame *A* → frame *B*) with `next` (frame *B* →
    /// frame *C*) into one delta describing *A* → *C* directly — the splice
    /// primitive a resilient streaming session uses to recover from skipped
    /// delta frames without replaying them one by one.
    ///
    /// A point survives the composition exactly when it survives both hops,
    /// and its final index is `next`'s mapping of this delta's mapping. Both
    /// survivor maps are strictly increasing, so the composed map is too —
    /// the order invariant holds by transitivity, and the composed delta is
    /// bit-identical to what [`FrameDelta::diff`]-style construction over
    /// frames *A* and *C* would be allowed to produce. Returns `None` when
    /// the deltas do not chain (`self.new_len() != next.old_len()`).
    pub fn compose(&self, next: &FrameDelta) -> Option<FrameDelta> {
        if self.new_len != next.old_len {
            return None;
        }
        let mut removed = Vec::new();
        let mut old_to_new = vec![REMOVED; self.old_len];
        for (old_i, slot) in old_to_new.iter_mut().enumerate() {
            let mid = self.old_to_new[old_i];
            let fin = if mid == REMOVED {
                REMOVED
            } else {
                next.old_to_new[mid as usize]
            };
            if fin == REMOVED {
                removed.push(old_i as u32);
            } else {
                *slot = fin;
            }
        }
        // Inserted = every final-frame index outside the survivor image. The
        // image is strictly increasing, so one merge walk recovers the gaps.
        let mut inserted = Vec::with_capacity(next.new_len - (self.old_len - removed.len()));
        let mut image = old_to_new.iter().copied().filter(|&m| m != REMOVED);
        let mut next_survivor = image.next();
        for new_i in 0..next.new_len as u32 {
            if next_survivor == Some(new_i) {
                next_survivor = image.next();
            } else {
                inserted.push(new_i);
            }
        }
        Some(FrameDelta {
            old_len: self.old_len,
            new_len: next.new_len,
            removed,
            inserted,
            old_to_new,
        })
    }

    /// Reconstructs the new frame's per-point values from the old frame
    /// plus the values of the inserted points (one per
    /// [`FrameDelta::inserted`] index, in the same order) — the receiver
    /// side of delta transport. Generic so that any attribute that rides
    /// the survivor map (positions, colors) can be rebuilt the same way.
    /// Returns `None` when the input lengths do not match this delta.
    pub fn apply<T: Copy + Default>(&self, old: &[T], inserted_values: &[T]) -> Option<Vec<T>> {
        if old.len() != self.old_len || inserted_values.len() != self.inserted.len() {
            return None;
        }
        let mut new = vec![T::default(); self.new_len];
        for (old_i, &new_i) in self.old_to_new.iter().enumerate() {
            if new_i != REMOVED {
                new[new_i as usize] = old[old_i];
            }
        }
        for (&new_i, &v) in self.inserted.iter().zip(inserted_values) {
            new[new_i as usize] = v;
        }
        Some(new)
    }
}

/// Bit pattern of a position — the diff's equality key. Comparing bit
/// patterns (not `f32` values) makes `-0.0 != +0.0` and `NaN == NaN`
/// (same payload), which is exactly the "same stored point" notion the
/// incremental consumers need.
#[inline]
fn position_key(p: Point3) -> u128 {
    (u128::from(p.x.to_bits()) << 64)
        | (u128::from(p.y.to_bits()) << 32)
        | u128::from(p.z.to_bits())
}

/// Folds a 96-bit position key into the nonzero 32-bit slot key the
/// membership set stores (splitmix-style avalanche; `0` is reserved as the
/// empty-slot marker, so a folded `0` is remapped to `1`).
#[inline]
fn fold_key(key: u128) -> u32 {
    let mut h = (key as u64) ^ ((key >> 64) as u64).rotate_left(32);
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    let folded = (h ^ (h >> 31)) as u32;
    folded.max(1)
}

/// Open-addressing membership set over folded position keys — the side
/// structure of [`FrameDelta::diff_bounded`]'s sampled survivor ceiling.
///
/// Folding to 32 bits means two distinct positions *can* share a slot key,
/// which is deliberately safe here: membership is a superset of survival
/// (collisions only produce false positives), so the sampled hit rate the
/// ceiling computes from this set can only *over*-estimate how many points
/// survive — an abort is still certain. The mismatch classification of the
/// walk itself uses the multiset-aware [`KeyCounts`] below instead.
struct KeySet {
    /// Folded keys; `0` marks an empty slot.
    slots: Vec<u32>,
    mask: usize,
}

impl KeySet {
    /// Builds the set (load factor kept at or below one half).
    fn over(points: &[Point3]) -> KeySet {
        let capacity = (points.len() * 2).next_power_of_two().max(8);
        let mut set = KeySet {
            slots: vec![0; capacity],
            mask: capacity - 1,
        };
        for &p in points {
            let key = fold_key(position_key(p));
            let mut s = key as usize & set.mask;
            loop {
                if set.slots[s] == 0 {
                    set.slots[s] = key;
                    break;
                }
                if set.slots[s] == key {
                    break;
                }
                s = (s + 1) & set.mask;
            }
        }
        set
    }

    /// `true` when the (folded) key is present.
    #[inline]
    fn contains(&self, position: u128) -> bool {
        let key = fold_key(position);
        let mut s = key as usize & self.mask;
        loop {
            if self.slots[s] == 0 {
                return false;
            }
            if self.slots[s] == key {
                return true;
            }
            s = (s + 1) & self.mask;
        }
    }
}

/// Open-addressing *multiset counts* over folded position keys — the
/// side structure of [`FrameDelta::diff`]'s mismatch classification.
///
/// Unlike a plain membership set, counts make duplicate-heavy frames (e.g.
/// quantized scans that store the same position many times) classify
/// precisely: once every copy of a position ahead of the cursor has been
/// consumed, its remaining count reaches zero and the walk can emit a
/// certain removal/insertion instead of conservatively churning both sides.
/// Folding to 32 bits means two distinct positions *can* share a slot, but a
/// collision only merges (inflates) counts, so `remaining() == 0` is certain
/// absence while a nonzero count merely steers the walk into its
/// conservative branch — degrading reuse, never correctness (survivors still
/// require exact 96-bit equality at the cursors). Built lazily at the first
/// mismatch so the matching fast path that dominates low-churn frames never
/// pays for it.
struct KeyCounts {
    /// `(folded key, remaining count)`; key `0` marks an empty slot.
    slots: Vec<(u32, u32)>,
    mask: usize,
}

impl KeyCounts {
    /// Builds the counts (load factor kept at or below one half).
    fn over(points: &[Point3]) -> KeyCounts {
        let capacity = (points.len() * 2).next_power_of_two().max(8);
        let mut counts = KeyCounts {
            slots: vec![(0, 0); capacity],
            mask: capacity - 1,
        };
        for &p in points {
            let key = fold_key(position_key(p));
            let mut s = key as usize & counts.mask;
            loop {
                if counts.slots[s].0 == 0 {
                    counts.slots[s] = (key, 1);
                    break;
                }
                if counts.slots[s].0 == key {
                    counts.slots[s].1 += 1;
                    break;
                }
                s = (s + 1) & counts.mask;
            }
        }
        counts
    }

    /// Remaining count of the (folded) position key.
    #[inline]
    fn remaining(&self, position: u128) -> u32 {
        let key = fold_key(position);
        let mut s = key as usize & self.mask;
        loop {
            let (k, n) = self.slots[s];
            if k == 0 {
                return 0;
            }
            if k == key {
                return n;
            }
            s = (s + 1) & self.mask;
        }
    }

    /// Consumes one occurrence of the (folded) position key — called when
    /// the cursor of the frame this map was built over advances past it.
    #[inline]
    fn consume(&mut self, position: u128) {
        let key = fold_key(position);
        let mut s = key as usize & self.mask;
        loop {
            let (k, n) = self.slots[s];
            if k == 0 {
                return;
            }
            if k == key {
                self.slots[s].1 = n.saturating_sub(1);
                return;
            }
            s = (s + 1) & self.mask;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[f32]) -> Vec<Point3> {
        coords.iter().map(|&x| Point3::new(x, 0.0, 0.0)).collect()
    }

    #[test]
    fn identity_diff() {
        let a = pts(&[1.0, 2.0, 3.0]);
        let d = FrameDelta::diff(&a, &a);
        assert!(d.is_identity());
        assert_eq!(d.survivors(), 3);
        assert_eq!(d.churn(), 0.0);
        assert!(d.verify(&a, &a).is_ok());
    }

    #[test]
    fn removal_in_the_middle() {
        let old = pts(&[1.0, 2.0, 3.0, 4.0]);
        let new = pts(&[1.0, 3.0, 4.0]);
        let d = FrameDelta::diff(&old, &new);
        assert_eq!(d.removed(), &[1]);
        assert!(d.inserted().is_empty());
        assert_eq!(d.old_to_new(), &[0, REMOVED, 1, 2]);
        assert!(d.verify(&old, &new).is_ok());
    }

    #[test]
    fn insertion_in_the_middle() {
        let old = pts(&[1.0, 2.0, 3.0]);
        let new = pts(&[1.0, 9.0, 2.0, 3.0]);
        let d = FrameDelta::diff(&old, &new);
        assert!(d.removed().is_empty());
        assert_eq!(d.inserted(), &[1]);
        assert_eq!(d.old_to_new(), &[0, 2, 3]);
        assert!(d.verify(&old, &new).is_ok());
    }

    #[test]
    fn replacement_at_same_site() {
        let old = pts(&[1.0, 2.0, 3.0]);
        let new = pts(&[1.0, 9.0, 3.0]);
        let d = FrameDelta::diff(&old, &new);
        assert_eq!(d.removed(), &[1]);
        assert_eq!(d.inserted(), &[1]);
        assert_eq!(d.survivors(), 2);
        assert!(d.verify(&old, &new).is_ok());
    }

    #[test]
    fn reorder_is_conservatively_churned() {
        let old = pts(&[1.0, 2.0]);
        let new = pts(&[2.0, 1.0]);
        let d = FrameDelta::diff(&old, &new);
        // A swap cannot keep both points as survivors (the order invariant
        // forbids a decreasing mapping); the delta must stay valid and may
        // keep at most one side of the swap.
        assert!(d.verify(&old, &new).is_ok());
        assert_eq!(d.survivors() + d.removed().len(), 2);
        assert!(d.survivors() <= 1);
        assert!(!d.removed().is_empty());
    }

    #[test]
    fn fully_disjoint_frames() {
        let old = pts(&[1.0, 2.0]);
        let new = pts(&[8.0, 9.0, 10.0]);
        let d = FrameDelta::diff(&old, &new);
        assert_eq!(d.removed(), &[0, 1]);
        assert_eq!(d.inserted(), &[0, 1, 2]);
        assert_eq!(d.survivors(), 0);
        assert!(d.verify(&old, &new).is_ok());
    }

    #[test]
    fn duplicates_stay_valid() {
        // The remaining-suffix counts are multiset-aware: losing one copy of
        // a duplicated position churns exactly that copy, and every other
        // point survives (the whole-frame membership sets this replaced used
        // to churn the 2.0 as well).
        let old = pts(&[1.0, 1.0, 2.0]);
        let new = pts(&[1.0, 2.0]);
        let d = FrameDelta::diff(&old, &new);
        assert_eq!(d.survivors(), 2);
        assert_eq!(d.removed(), &[1]);
        assert!(d.inserted().is_empty());
        assert!(d.verify(&old, &new).is_ok());
        // The other direction gains a duplicate.
        let d = FrameDelta::diff(&new, &old);
        assert_eq!(d.survivors(), 2);
        assert_eq!(d.inserted(), &[1]);
        assert!(d.removed().is_empty());
        assert!(d.verify(&new, &old).is_ok());
    }

    /// Regression for the duplicate-heavy over-churn: a quantized scan
    /// stores many bitwise-identical positions, and a 10%-churn frame pair
    /// must still report ~90% survivors — the whole-frame membership sets
    /// this fixed used to collapse reuse to near zero because every consumed
    /// duplicate kept reading as "present elsewhere".
    #[test]
    fn duplicate_heavy_clouds_keep_churn_proportional_reuse() {
        // 1000 points quantized onto a coarse grid: every position appears
        // ~8 times.
        let quantize = |i: usize| {
            let g = (i % 125) as f32;
            Point3::new(
                (g % 5.0).floor(),
                ((g / 5.0) % 5.0).floor(),
                (g / 25.0).floor(),
            )
        };
        let old: Vec<Point3> = (0..1000).map(quantize).collect();
        // Remove every 10th point and append fresh (off-grid) replacements.
        let mut new: Vec<Point3> = old
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 10 != 0)
            .map(|(_, &p)| p)
            .collect();
        new.extend((0..100).map(|i| Point3::new(100.0 + i as f32, 0.5, 0.5)));
        let d = FrameDelta::diff(&old, &new);
        assert!(d.verify(&old, &new).is_ok());
        assert_eq!(
            d.survivors(),
            900,
            "duplicate-heavy churn must stay proportional, got {} survivors of 900 possible",
            d.survivors()
        );
        assert_eq!(d.inserted().len(), 100);
    }

    #[test]
    fn diff_bounded_aborts_below_the_survivor_floor() {
        let old = pts(&[1.0, 2.0, 3.0, 4.0]);
        let new = pts(&[9.0, 8.0, 7.0, 6.0]);
        assert!(FrameDelta::diff_bounded(&old, &new, 1).is_none());
        // A fully matching pair always satisfies any reachable bound.
        assert!(FrameDelta::diff_bounded(&old, &old, 4).is_some());
        assert!(FrameDelta::diff_bounded(&old, &old, 5).is_none());
        // Zero bound never aborts.
        assert!(FrameDelta::diff_bounded(&old, &new, 0).is_some());
    }

    #[test]
    fn empty_frames() {
        let d = FrameDelta::diff(&[], &[]);
        assert!(d.is_identity());
        let new = pts(&[1.0]);
        let d = FrameDelta::diff(&[], &new);
        assert_eq!(d.inserted(), &[0]);
        let d = FrameDelta::diff(&new, &[]);
        assert_eq!(d.removed(), &[0]);
    }

    #[test]
    fn negative_zero_and_nan_are_distinct_patterns() {
        let old = vec![Point3::new(0.0, 0.0, 0.0)];
        let new = vec![Point3::new(-0.0, 0.0, 0.0)];
        let d = FrameDelta::diff(&old, &new);
        assert_eq!(d.survivors(), 0, "-0.0 is a different stored point");
    }

    #[test]
    fn from_parts_builds_expected_mapping() {
        // old: a b c d  (remove b, d) ; new: a X c Y (insert 1, 3)
        let d = FrameDelta::from_parts(4, 4, vec![1, 3], vec![1, 3]).unwrap();
        assert_eq!(d.old_to_new(), &[0, REMOVED, 2, REMOVED]);
        assert_eq!(d.map_old(2), Some(2));
        assert_eq!(d.survivors(), 2);
    }

    #[test]
    fn from_parts_rejects_inconsistencies() {
        // Count mismatch.
        assert!(FrameDelta::from_parts(4, 4, vec![1], vec![]).is_none());
        // Out of bounds.
        assert!(FrameDelta::from_parts(4, 4, vec![9], vec![0]).is_none());
        // Not ascending / duplicate.
        assert!(FrameDelta::from_parts(4, 4, vec![2, 1], vec![0, 3]).is_none());
        assert!(FrameDelta::from_parts(4, 4, vec![1, 1], vec![0, 3]).is_none());
        // Too many removals.
        assert!(FrameDelta::from_parts(1, 3, vec![0, 1], vec![0, 1, 2, 3]).is_none());
    }

    #[test]
    fn verify_rejects_wrong_deltas() {
        let old = pts(&[1.0, 2.0, 3.0]);
        let new = pts(&[1.0, 9.0, 3.0]);
        // Claims identity over different frames: survivor 1 moved.
        let id = FrameDelta::from_parts(3, 3, vec![], vec![]).unwrap();
        assert_eq!(
            id.verify(&old, &new),
            Err(DeltaError::PositionMismatch {
                old_index: 1,
                new_index: 1
            })
        );
        // Wrong lengths, reported per side.
        let d = FrameDelta::diff(&old, &new);
        assert_eq!(
            d.verify(&old[..2], &new),
            Err(DeltaError::OldLenMismatch {
                expected: 3,
                got: 2
            })
        );
        assert_eq!(
            d.verify(&old, &new[..2]),
            Err(DeltaError::NewLenMismatch {
                expected: 3,
                got: 2
            })
        );
    }

    #[test]
    fn diff_agrees_with_from_parts_on_append_only_churn() {
        let old = pts(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        // Remove indices 1 and 3, append two fresh points.
        let new = pts(&[1.0, 3.0, 5.0, 7.0, 8.0]);
        let a = FrameDelta::diff(&old, &new);
        let b = FrameDelta::from_parts(5, 5, vec![1, 3], vec![3, 4]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn compose_matches_direct_diff() {
        let f0 = pts(&[1.0, 2.0, 3.0, 4.0]);
        let f1 = pts(&[1.0, 3.0, 4.0, 9.0]); // drop 2.0, append 9.0
        let f2 = pts(&[3.0, 4.0, 9.0, 7.0]); // drop 1.0, append 7.0
        let a = FrameDelta::diff(&f0, &f1);
        let b = FrameDelta::diff(&f1, &f2);
        let spliced = a.compose(&b).unwrap();
        assert_eq!(spliced, FrameDelta::diff(&f0, &f2));
        assert!(spliced.verify(&f0, &f2).is_ok());
    }

    #[test]
    fn compose_chains_three_hops_and_rejects_length_mismatch() {
        let f0 = pts(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let f1 = pts(&[1.0, 3.0, 4.0, 5.0]);
        let f2 = pts(&[0.5, 1.0, 4.0, 5.0, 8.0]);
        let f3 = pts(&[0.5, 4.0, 8.0, 6.0, 6.5]);
        let d01 = FrameDelta::diff(&f0, &f1);
        let d12 = FrameDelta::diff(&f1, &f2);
        let d23 = FrameDelta::diff(&f2, &f3);
        let spliced = d01.compose(&d12).unwrap().compose(&d23).unwrap();
        assert!(spliced.verify(&f0, &f3).is_ok());
        assert_eq!(spliced, FrameDelta::diff(&f0, &f3));
        // Deltas that do not chain are rejected.
        assert!(d01.compose(&d23).is_none());
    }

    #[test]
    fn compose_with_identity_is_identity_of_composition() {
        let f0 = pts(&[1.0, 2.0, 3.0]);
        let f1 = pts(&[1.0, 3.0, 5.0]);
        let d = FrameDelta::diff(&f0, &f1);
        let id_old = FrameDelta::diff(&f0, &f0);
        let id_new = FrameDelta::diff(&f1, &f1);
        assert_eq!(id_old.compose(&d).unwrap(), d);
        assert_eq!(d.compose(&id_new).unwrap(), d);
    }

    #[test]
    fn apply_reconstructs_the_new_frame() {
        let old = pts(&[1.0, 2.0, 3.0, 4.0]);
        let new = pts(&[1.0, 7.0, 3.0, 4.0, 8.0]);
        let d = FrameDelta::diff(&old, &new);
        let inserted: Vec<Point3> = d.inserted().iter().map(|&i| new[i as usize]).collect();
        assert_eq!(d.apply(&old, &inserted).unwrap(), new);
        // Length mismatches are rejected.
        assert!(d.apply(&old[..3], &inserted).is_none());
        assert!(d.apply(&old, &inserted[..1]).is_none());
    }
}

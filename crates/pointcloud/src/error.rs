//! Error type shared by the point-cloud substrate.

use std::fmt;
use std::io;

/// Errors returned by the point-cloud substrate.
#[derive(Debug)]
pub enum Error {
    /// An argument was outside its documented domain (e.g. a sampling ratio
    /// outside `(0, 1]` or `k = 0` neighbors requested).
    InvalidArgument(String),
    /// The operation requires a non-empty cloud but received an empty one.
    EmptyCloud(String),
    /// The cloud's attribute arrays disagree in length.
    AttributeMismatch {
        /// Number of positions in the cloud.
        positions: usize,
        /// Number of attribute entries found.
        attributes: usize,
    },
    /// An underlying I/O failure while reading or writing cloud data.
    Io(io::Error),
    /// The input file or buffer is not a valid serialized point cloud.
    Format(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            Error::EmptyCloud(op) => write!(f, "operation `{op}` requires a non-empty point cloud"),
            Error::AttributeMismatch { positions, attributes } => write!(
                f,
                "attribute length mismatch: {positions} positions but {attributes} attribute entries"
            ),
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::Format(msg) => write!(f, "malformed point cloud data: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let errs: Vec<Error> = vec![
            Error::InvalidArgument("ratio must be in (0, 1]".into()),
            Error::EmptyCloud("chamfer_distance".into()),
            Error::AttributeMismatch {
                positions: 3,
                attributes: 2,
            },
            Error::Io(io::Error::new(io::ErrorKind::NotFound, "missing")),
            Error::Format("truncated header".into()),
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn io_error_has_source() {
        let e = Error::from(io::Error::other("boom"));
        assert!(e.source().is_some());
        assert!(Error::Format("x".into()).source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}

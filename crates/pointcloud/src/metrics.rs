//! Quality metrics used in the paper's evaluation (§7.1): point-to-point
//! Chamfer distance, geometric PSNR, color PSNR, Hausdorff distance and a
//! density-aware Chamfer variant.

use crate::cloud::PointCloud;
use crate::kdtree::KdTree;
use crate::knn::NeighborSearch;
use crate::point::Point3;

/// Mean squared distance from every point of `from` to its nearest neighbor
/// in `to`. Returns 0 when `from` is empty and `f32::INFINITY` when only
/// `to` is empty.
pub fn one_sided_chamfer(from: &PointCloud, to: &PointCloud) -> f64 {
    if from.is_empty() {
        return 0.0;
    }
    if to.is_empty() {
        return f64::INFINITY;
    }
    let tree = KdTree::build(to.positions());
    let mut total = 0.0f64;
    for &p in from.positions() {
        let nn = tree.knn(p, 1);
        total += f64::from(nn[0].distance_squared);
    }
    total / from.len() as f64
}

/// Symmetric point-to-point (P2P) Chamfer distance:
/// `CD(A, B) = mean_a min_b ||a-b||² + mean_b min_a ||a-b||²`.
///
/// This is the geometric-accuracy metric of Figures 8 and 10.
///
/// # Example
///
/// ```
/// use volut_pointcloud::{synthetic, metrics};
/// let a = synthetic::sphere(500, 1.0, 1);
/// assert_eq!(metrics::chamfer_distance(&a, &a), 0.0);
/// ```
pub fn chamfer_distance(a: &PointCloud, b: &PointCloud) -> f64 {
    one_sided_chamfer(a, b) + one_sided_chamfer(b, a)
}

/// Density-aware Chamfer distance (Wu et al.): like the Chamfer distance but
/// each nearest-neighbor term is weighted by `1 - exp(-n_hits)` where
/// `n_hits` counts how many query points selected the same target point.
/// Penalizes clumpy reconstructions that reuse a few target points.
pub fn density_aware_chamfer(a: &PointCloud, b: &PointCloud) -> f64 {
    fn one_side(from: &PointCloud, to: &PointCloud) -> f64 {
        if from.is_empty() {
            return 0.0;
        }
        if to.is_empty() {
            return f64::INFINITY;
        }
        let tree = KdTree::build(to.positions());
        let mut hits = vec![0u32; to.len()];
        let mut pairs = Vec::with_capacity(from.len());
        for &p in from.positions() {
            let nn = tree.knn(p, 1)[0];
            hits[nn.index] += 1;
            pairs.push((nn.index, f64::from(nn.distance_squared)));
        }
        let mut total = 0.0;
        for (idx, d2) in pairs {
            let w = 1.0 - (-f64::from(hits[idx])).exp();
            total += w * d2 + (1.0 - w) * d2 * 2.0;
        }
        total / from.len() as f64
    }
    one_side(a, b) + one_side(b, a)
}

/// Hausdorff distance: the maximum over both directions of the distance from
/// a point to its nearest neighbor in the other cloud.
pub fn hausdorff_distance(a: &PointCloud, b: &PointCloud) -> f64 {
    fn one_side(from: &PointCloud, to: &PointCloud) -> f64 {
        if from.is_empty() {
            return 0.0;
        }
        if to.is_empty() {
            return f64::INFINITY;
        }
        let tree = KdTree::build(to.positions());
        from.positions()
            .iter()
            .map(|&p| f64::from(tree.knn(p, 1)[0].distance_squared).sqrt())
            .fold(0.0, f64::max)
    }
    one_side(a, b).max(one_side(b, a))
}

/// Geometric PSNR between a reconstructed cloud and its ground truth, the
/// visual-quality proxy of Figures 7 and 9.
///
/// Defined (following the MPEG PCC convention) as
/// `10 * log10(peak² / MSE)` where `peak` is the ground-truth bounding-box
/// diagonal and `MSE` is the symmetric Chamfer distance divided by two.
/// Returns `f64::INFINITY` for identical clouds.
pub fn geometric_psnr(reconstructed: &PointCloud, ground_truth: &PointCloud) -> f64 {
    let mse = chamfer_distance(reconstructed, ground_truth) / 2.0;
    if mse <= 0.0 {
        return f64::INFINITY;
    }
    let peak = ground_truth
        .bounds()
        .map(|b| f64::from(b.extent().norm()))
        .unwrap_or(1.0)
        .max(f64::EPSILON);
    10.0 * ((peak * peak) / mse).log10()
}

/// Color PSNR: for every reconstructed point, compares its color against the
/// color of the nearest ground-truth point (per-channel MSE over `[0,1]`).
/// Returns `None` when either cloud lacks colors or is empty.
pub fn color_psnr(reconstructed: &PointCloud, ground_truth: &PointCloud) -> Option<f64> {
    let rc = reconstructed.colors()?;
    let gc = ground_truth.colors()?;
    if reconstructed.is_empty() || ground_truth.is_empty() {
        return None;
    }
    let tree = KdTree::build(ground_truth.positions());
    let mut mse = 0.0f64;
    for (i, &p) in reconstructed.positions().iter().enumerate() {
        let nn = tree.knn(p, 1)[0];
        let a = rc[i].to_f32();
        let b = gc[nn.index].to_f32();
        for c in 0..3 {
            let d = f64::from(a[c] - b[c]);
            mse += d * d;
        }
    }
    mse /= (reconstructed.len() * 3) as f64;
    if mse <= 0.0 {
        Some(f64::INFINITY)
    } else {
        Some(10.0 * (1.0 / mse).log10())
    }
}

/// Viewport-rendered PSNR proxy.
///
/// The paper renders viewports as 2D images and computes image PSNR; here we
/// approximate that by splatting luma onto a `resolution × resolution`
/// orthographic grid viewed along `view_dir` and comparing grids. Empty
/// cells in either image are skipped.
pub fn rendered_psnr(
    reconstructed: &PointCloud,
    ground_truth: &PointCloud,
    view_dir: Point3,
    resolution: usize,
) -> Option<f64> {
    let img_a = splat_luma(reconstructed, view_dir, resolution)?;
    let img_b = splat_luma(ground_truth, view_dir, resolution)?;
    let mut mse = 0.0f64;
    let mut count = 0usize;
    for (a, b) in img_a.iter().zip(img_b.iter()) {
        match (a, b) {
            (Some(x), Some(y)) => {
                let d = f64::from(x - y);
                mse += d * d;
                count += 1;
            }
            (None, None) => {}
            // A cell covered in one image but not the other is a structural
            // error: count it at full scale.
            _ => {
                mse += 1.0;
                count += 1;
            }
        }
    }
    if count == 0 {
        return None;
    }
    mse /= count as f64;
    Some(if mse <= 0.0 {
        f64::INFINITY
    } else {
        10.0 * (1.0 / mse).log10()
    })
}

fn splat_luma(cloud: &PointCloud, view_dir: Point3, resolution: usize) -> Option<Vec<Option<f32>>> {
    if cloud.is_empty() || resolution == 0 {
        return None;
    }
    let dir = view_dir.normalized()?;
    // Build an orthonormal basis (u, v) perpendicular to the view direction.
    let helper = if dir.x.abs() < 0.9 {
        Point3::new(1.0, 0.0, 0.0)
    } else {
        Point3::new(0.0, 1.0, 0.0)
    };
    let u = dir.cross(helper).normalized()?;
    let v = dir.cross(u).normalized()?;
    let bounds = cloud.bounds()?;
    let center = bounds.center();
    let scale = bounds.half_diagonal().max(1e-6);
    let mut img: Vec<Option<(f32, f32)>> = vec![None; resolution * resolution]; // (depth, luma)
    for (i, &p) in cloud.positions().iter().enumerate() {
        let rel = (p - center) / scale;
        let x = ((rel.dot(u) + 1.0) * 0.5 * (resolution - 1) as f32).round() as isize;
        let y = ((rel.dot(v) + 1.0) * 0.5 * (resolution - 1) as f32).round() as isize;
        if x < 0 || y < 0 || x as usize >= resolution || y as usize >= resolution {
            continue;
        }
        let depth = rel.dot(dir);
        let luma = cloud.color(i).map_or(0.5, |c| c.luma());
        let cell = &mut img[y as usize * resolution + x as usize];
        match cell {
            Some((d, _)) if *d <= depth => {}
            _ => *cell = Some((depth, luma)),
        }
    }
    Some(img.into_iter().map(|c| c.map(|(_, l)| l)).collect())
}

/// A bundle of the per-frame quality metrics reported in the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityReport {
    /// Symmetric Chamfer distance (lower is better).
    pub chamfer: f64,
    /// Geometric PSNR in dB (higher is better).
    pub psnr_db: f64,
    /// Color PSNR in dB, when both clouds carry colors.
    pub color_psnr_db: Option<f64>,
    /// Hausdorff distance (lower is better).
    pub hausdorff: f64,
}

/// Computes the full [`QualityReport`] for a reconstruction.
pub fn quality_report(reconstructed: &PointCloud, ground_truth: &PointCloud) -> QualityReport {
    QualityReport {
        chamfer: chamfer_distance(reconstructed, ground_truth),
        psnr_db: geometric_psnr(reconstructed, ground_truth),
        color_psnr_db: color_psnr(reconstructed, ground_truth),
        hausdorff: hausdorff_distance(reconstructed, ground_truth),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling;
    use crate::synthetic;

    #[test]
    fn chamfer_zero_on_identical() {
        let c = synthetic::sphere(400, 1.0, 1);
        assert_eq!(chamfer_distance(&c, &c), 0.0);
        assert_eq!(hausdorff_distance(&c, &c), 0.0);
    }

    #[test]
    fn chamfer_symmetric() {
        let a = synthetic::sphere(300, 1.0, 2);
        let b = synthetic::torus(300, 1.0, 0.3, 3);
        let ab = chamfer_distance(&a, &b);
        let ba = chamfer_distance(&b, &a);
        assert!((ab - ba).abs() < 1e-9);
        assert!(ab > 0.0);
    }

    #[test]
    fn chamfer_increases_with_downsampling() {
        let full = synthetic::sphere(2000, 1.0, 4);
        let half = sampling::random_downsample(&full, 0.5, 1).unwrap();
        let tenth = sampling::random_downsample(&full, 0.1, 1).unwrap();
        let cd_half = chamfer_distance(&half, &full);
        let cd_tenth = chamfer_distance(&tenth, &full);
        assert!(cd_tenth > cd_half);
    }

    #[test]
    fn psnr_decreases_with_more_aggressive_downsampling() {
        let full = synthetic::sphere(2000, 1.0, 5);
        let half = sampling::random_downsample(&full, 0.5, 1).unwrap();
        let tenth = sampling::random_downsample(&full, 0.05, 1).unwrap();
        let p_half = geometric_psnr(&half, &full);
        let p_tenth = geometric_psnr(&tenth, &full);
        assert!(p_half > p_tenth);
        assert!(geometric_psnr(&full, &full).is_infinite());
    }

    #[test]
    fn empty_cloud_behaviour() {
        let c = synthetic::sphere(100, 1.0, 6);
        let empty = PointCloud::new();
        assert_eq!(one_sided_chamfer(&empty, &c), 0.0);
        assert!(one_sided_chamfer(&c, &empty).is_infinite());
    }

    #[test]
    fn color_psnr_identical_is_infinite() {
        let c = synthetic::sphere(200, 1.0, 7);
        assert!(color_psnr(&c, &c).unwrap().is_infinite());
        let no_colors = PointCloud::from_positions(c.positions().to_vec());
        assert!(color_psnr(&no_colors, &c).is_none());
    }

    #[test]
    fn density_aware_chamfer_penalizes_clumps() {
        let gt = synthetic::sphere(1000, 1.0, 8);
        let uniform = sampling::random_downsample_exact(&gt, 250, 1).unwrap();
        // Clumpy reconstruction: 250 copies of a small patch of the sphere.
        let patch = gt.select(&(0..250).map(|i| i % 25).collect::<Vec<_>>());
        let d_uniform = density_aware_chamfer(&uniform, &gt);
        let d_clumpy = density_aware_chamfer(&patch, &gt);
        assert!(d_clumpy > d_uniform);
    }

    #[test]
    fn rendered_psnr_sane() {
        let gt = synthetic::sphere(2000, 1.0, 9);
        let low = sampling::random_downsample(&gt, 0.3, 2).unwrap();
        let p = rendered_psnr(&low, &gt, Point3::new(0.0, 0.0, 1.0), 32).unwrap();
        assert!(p > 0.0);
        let self_p = rendered_psnr(&gt, &gt, Point3::new(0.0, 0.0, 1.0), 32).unwrap();
        assert!(self_p >= p);
        assert!(rendered_psnr(&PointCloud::new(), &gt, Point3::new(0.0, 0.0, 1.0), 32).is_none());
    }

    #[test]
    fn quality_report_contains_consistent_values() {
        let gt = synthetic::torus(800, 1.0, 0.3, 10);
        let low = sampling::random_downsample(&gt, 0.5, 3).unwrap();
        let r = quality_report(&low, &gt);
        assert!(r.chamfer > 0.0);
        assert!(r.psnr_db > 0.0);
        assert!(r.hausdorff >= r.chamfer.sqrt() / 2.0);
        assert!(r.color_psnr_db.is_some());
    }
}

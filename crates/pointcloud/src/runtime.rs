//! Work-stealing task runtime — the engine's thread pool.
//!
//! The crate's data-parallel helpers ([`crate::par`]) used to fan chunks out
//! over `std::thread::scope`, spawning one OS thread *per chunk*: a
//! 1000-chunk job oversubscribed the machine a hundredfold, and every
//! parallel stage paid thread spawn/join latency. This module replaces that
//! with a real pool, hand-rolled in the style of rayon's registry (the
//! crates.io registry is unreachable from the build environment):
//!
//! * **Per-worker deques, Chase–Lev discipline.** Each worker owns a
//!   fixed-capacity lock-free deque (`Deque`): the owner pushes and pops
//!   at the *bottom* (LIFO — the task it just split stays cache-hot), while
//!   thieves steal from the *top* (FIFO — a thief grabs the oldest, i.e.
//!   largest, outstanding split). All deque words are `SeqCst` atomics; the
//!   owner/thief race on the last element is resolved by a compare-exchange
//!   on `top` exactly as in Chase & Lev's algorithm.
//! * **Global injector.** Threads that are not pool workers (the session
//!   thread submitting a frame, tests) inject jobs through a mutex-guarded
//!   FIFO; workers fall back to it between steals. Deque overflow (bounded
//!   buffers never grow) also lands here, so no task is ever dropped.
//! * **Recursively splittable range tasks.** The one job shape is
//!   [`Pool::run_range`]: `f` is called over disjoint sub-ranges of
//!   `0..len`. An executing task halves itself until it is at most `grain`
//!   long, pushing the far half onto the worker's deque where idle workers
//!   steal it — so load balancing is dynamic without the caller choosing a
//!   chunk layout, and the *task* count never exceeds what splitting
//!   produces while the *executor* count never exceeds the pool size.
//! * **Parked idle workers.** A worker that finds no work anywhere parks on
//!   a condvar; pushes notify only when sleepers exist, so a saturated pool
//!   never touches the wake lock. Parks use a bounded timeout as a
//!   lost-wakeup backstop.
//! * **Panic propagation.** A panicking task poisons its job (first panic
//!   payload wins), remaining tasks of that job are drained without running
//!   the closure, and the submitting thread re-raises the payload after the
//!   job quiesces — the pool itself never dies.
//! * **Worker-count resolution.** The lazily-created global pool sizes
//!   itself from the `VOLUT_WORKERS` environment variable when set (any
//!   value ≥ 1), else from [`std::thread::available_parallelism`], else 1 —
//!   never a hard-coded guess. [`with_workers`] overrides the pool for the
//!   current thread's scope (tests, benches, and the worker-count matrix in
//!   CI use it); pool workers inherit their pool, so nested parallel stages
//!   inside a scoped job stay on the scoped pool.
//!
//! # Determinism
//!
//! The runtime never changes results: every parallel site in the engine
//! partitions its output into disjoint slots whose values depend only on
//! the slot (seed-per-point RNG, row-independent kernels), so any
//! scheduling — including work stealing — produces bit-identical output.
//! The property suite pins this across worker counts {1, 2, 4, 8}.
//!
//! A submitting thread *participates* while it waits: it executes injector
//! tasks and steals from workers until its own job completes. This is what
//! makes nested `run_range` calls from inside a task deadlock-free (the
//! nesting worker keeps executing its own splits LIFO off its deque), and
//! it bounds a job's executor count at `pool size` (the pool spawns
//! `workers - 1` threads; the submitter is the final executor).

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicIsize, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Capacity of each worker's deque (power of two). Splitting pushes at most
/// `log2(len / grain)` tasks per executing task, so depth stays far below
/// this; overflow (nested jobs stacking up) falls back to the injector.
const DEQUE_CAP: usize = 256;

/// One schedulable unit: a sub-range of a job's index space. `job` points
/// at the submitting thread's stack-pinned [`JobCore`], which outlives every
/// task of the job (the submitter blocks until the job's pending count
/// reaches zero).
#[derive(Clone, Copy)]
struct Task {
    job: *const JobCore<'static>,
    lo: usize,
    hi: usize,
}

// SAFETY: a `Task` is a plain (pointer, range) triple; the pointed-to
// `JobCore` is `Sync` (all shared state atomic or mutex-guarded) and is kept
// alive by the submitting thread until the job quiesces.
unsafe impl Send for Task {}

/// Fixed-capacity Chase–Lev work-stealing deque.
///
/// The owner pushes/pops at `bottom` (LIFO); thieves compare-exchange `top`
/// upward (FIFO). Every word — indices *and* slot contents — is a `SeqCst`
/// atomic, so slot reads are never torn at word granularity and the
/// correctness argument is the classic one: a thief only *uses* a slot it
/// read after its successful CAS on `top`, and while `top == t` the owner's
/// capacity check (`bottom - top < CAP - 1`) makes it impossible for a push
/// to overwrite physical slot `t mod CAP`; a failed CAS discards the read.
struct Deque {
    top: AtomicIsize,
    bottom: AtomicIsize,
    /// Slot storage: one pointer word plus the packed range per task.
    jobs: Box<[AtomicUsize]>,
    ranges: Box<[(AtomicU64, AtomicU64)]>,
}

impl Deque {
    fn new() -> Self {
        Self {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            jobs: (0..DEQUE_CAP).map(|_| AtomicUsize::new(0)).collect(),
            ranges: (0..DEQUE_CAP)
                .map(|_| (AtomicU64::new(0), AtomicU64::new(0)))
                .collect(),
        }
    }

    #[inline]
    fn write_slot(&self, at: isize, task: Task) {
        let i = (at as usize) & (DEQUE_CAP - 1);
        self.jobs[i].store(task.job as usize, SeqCst);
        self.ranges[i].0.store(task.lo as u64, SeqCst);
        self.ranges[i].1.store(task.hi as u64, SeqCst);
    }

    #[inline]
    fn read_slot(&self, at: isize) -> Task {
        let i = (at as usize) & (DEQUE_CAP - 1);
        Task {
            job: self.jobs[i].load(SeqCst) as *const JobCore<'static>,
            lo: self.ranges[i].0.load(SeqCst) as usize,
            hi: self.ranges[i].1.load(SeqCst) as usize,
        }
    }

    /// Owner-only bottom push. Returns the task back when the deque is full
    /// (caller redirects it to the injector).
    fn push(&self, task: Task) -> Result<(), Task> {
        let b = self.bottom.load(SeqCst);
        let t = self.top.load(SeqCst);
        if b - t >= DEQUE_CAP as isize - 1 {
            return Err(task);
        }
        self.write_slot(b, task);
        self.bottom.store(b + 1, SeqCst);
        Ok(())
    }

    /// Owner-only bottom (LIFO) pop.
    fn pop(&self) -> Option<Task> {
        let b = self.bottom.load(SeqCst) - 1;
        self.bottom.store(b, SeqCst);
        let t = self.top.load(SeqCst);
        if t > b {
            // Empty: restore and bail.
            self.bottom.store(b + 1, SeqCst);
            return None;
        }
        let task = self.read_slot(b);
        if b > t {
            return Some(task);
        }
        // Last element: race the thieves for it via `top`.
        let won = self.top.compare_exchange(t, t + 1, SeqCst, SeqCst).is_ok();
        self.bottom.store(b + 1, SeqCst);
        won.then_some(task)
    }

    /// Thief-side top (FIFO) steal. A lost CAS returns `None` — the thief
    /// moves on to its next victim rather than spinning here.
    fn steal(&self) -> Option<Task> {
        let t = self.top.load(SeqCst);
        let b = self.bottom.load(SeqCst);
        if t >= b {
            return None;
        }
        let task = self.read_slot(t);
        self.top
            .compare_exchange(t, t + 1, SeqCst, SeqCst)
            .is_ok()
            .then_some(task)
    }
}

/// Per-job shared state, pinned on the submitting thread's stack for the
/// duration of [`Pool::run_range`].
struct JobCore<'scope> {
    /// The user's range closure (borrowed — the job cannot outlive it).
    func: &'scope (dyn Fn(Range<usize>) + Sync),
    /// Split tasks at or below this length execute directly.
    grain: usize,
    /// Outstanding tasks. Guarded by `lock` so the submitter's "done"
    /// observation is ordered after the last worker's final access to this
    /// struct (no use-after-free on the stack pin).
    pending: Mutex<usize>,
    /// Signalled (under `lock`) when `pending` reaches zero.
    done: Condvar,
    /// Set once any task of this job panics; remaining tasks short-circuit.
    poisoned: AtomicBool,
    /// First panic payload, re-raised by the submitter.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl JobCore<'_> {
    /// Accounts `n` newly created tasks.
    fn add_pending(&self, n: usize) {
        *self.pending.lock().expect("job lock") += n;
    }

    /// Accounts one finished task; wakes the submitter on the last one.
    fn finish_one(&self) {
        let mut p = self.pending.lock().expect("job lock");
        *p -= 1;
        if *p == 0 {
            self.done.notify_all();
        }
    }
}

// SAFETY: every field is either `Sync` itself (atomics, mutexes, condvar) or
// an immutable shared borrow of a `Sync` closure.
unsafe impl Sync for JobCore<'_> {}

/// State shared by every worker of one pool.
struct Shared {
    deques: Vec<Deque>,
    injector: Mutex<VecDeque<Task>>,
    /// Count of parked workers; pushes skip the wake lock when it is zero.
    sleepers: AtomicUsize,
    wake_lock: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    /// Queues `task` on `deque_ix`'s deque (injector on overflow or for
    /// threads without a deque) and wakes a sleeper if any worker is parked.
    fn submit(&self, deque_ix: Option<usize>, task: Task) {
        let overflow = match deque_ix {
            Some(ix) => self.deques[ix].push(task).err(),
            None => Some(task),
        };
        if let Some(task) = overflow {
            self.injector.lock().expect("injector").push_back(task);
        }
        if self.sleepers.load(SeqCst) > 0 {
            let _g = self.wake_lock.lock().expect("wake lock");
            self.wake.notify_all();
        }
    }

    /// One attempt to find work: own deque (LIFO) when the caller is a
    /// worker, then the injector (FIFO), then a steal sweep over every
    /// other worker's deque (FIFO per victim).
    fn find_task(&self, own: Option<usize>) -> Option<Task> {
        if let Some(ix) = own {
            if let Some(task) = self.deques[ix].pop() {
                return Some(task);
            }
        }
        if let Some(task) = self.injector.lock().expect("injector").pop_front() {
            return Some(task);
        }
        // Start each sweep at a victim derived from the caller's identity so
        // concurrent thieves fan out instead of convoying on worker 0.
        let n = self.deques.len();
        let start = own.map_or(0, |ix| ix + 1);
        for off in 0..n {
            let victim = (start + off) % n;
            if Some(victim) == own {
                continue;
            }
            if let Some(task) = self.deques[victim].steal() {
                return Some(task);
            }
        }
        None
    }
}

/// Executes `task`: splits it down to `grain`, re-queuing far halves, then
/// runs the job closure on the final range (skipped when the job is already
/// poisoned). Catches panics and routes them to the job.
fn execute(shared: &Shared, own: Option<usize>, task: Task) {
    // SAFETY: tasks never outlive their job (the submitter blocks until
    // `pending == 0`, and `pending` counts this task until `finish_one`).
    let job = unsafe { &*task.job };
    let (lo, mut hi) = (task.lo, task.hi);
    while hi - lo > job.grain && !job.poisoned.load(SeqCst) {
        let mid = lo + (hi - lo) / 2;
        job.add_pending(1);
        shared.submit(
            own,
            Task {
                job: task.job,
                lo: mid,
                hi,
            },
        );
        hi = mid;
    }
    if !job.poisoned.load(SeqCst) {
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (job.func)(lo..hi)));
        if let Err(payload) = run {
            job.poisoned.store(true, SeqCst);
            let mut slot = job.panic.lock().expect("panic slot");
            slot.get_or_insert(payload);
        }
    }
    job.finish_one();
}

/// Thread-local identity of a pool worker (its pool and deque index), also
/// the channel through which [`with_workers`] overrides the current pool.
struct ThreadPool {
    pool: Arc<PoolInner>,
    /// Deque index when this thread is a spawned worker of `pool`.
    deque: Option<usize>,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<ThreadPool>> = const { std::cell::RefCell::new(None) };
}

struct PoolInner {
    shared: Arc<Shared>,
    workers: usize,
}

impl PoolInner {
    /// Runs one job to completion from the submitting thread, participating
    /// in execution while waiting.
    fn run_range(&self, len: usize, grain: usize, f: &(dyn Fn(Range<usize>) + Sync)) {
        if len == 0 {
            return;
        }
        let grain = grain.max(1);
        if self.workers <= 1 || len <= grain {
            f(0..len);
            return;
        }
        let job = JobCore {
            func: f,
            grain,
            pending: Mutex::new(1),
            done: Condvar::new(),
            poisoned: AtomicBool::new(false),
            panic: Mutex::new(None),
        };
        // Erase the scope lifetime for storage in `Task` (a plain pointer).
        // SAFETY: this function does not return until `pending == 0`, i.e.
        // until no task referencing `job` exists anywhere in the pool.
        let job_ptr: *const JobCore<'static> = std::ptr::from_ref(&job).cast();
        let own = CURRENT.with(|c| {
            c.borrow()
                .as_ref()
                .filter(|tp| Arc::ptr_eq(&tp.pool.shared, &self.shared))
                .and_then(|tp| tp.deque)
        });
        self.shared.submit(
            own,
            Task {
                job: job_ptr,
                lo: 0,
                hi: len,
            },
        );
        // Participate until the job quiesces. Finding no task does NOT mean
        // the job is done (workers may still be executing), so fall back to
        // a bounded condvar wait on the job's pending count.
        loop {
            if let Some(task) = self.shared.find_task(own) {
                execute(&self.shared, own, task);
                continue;
            }
            let mut pending = job.pending.lock().expect("job lock");
            if *pending == 0 {
                break;
            }
            let (p, _) = job
                .done
                .wait_timeout(pending, std::time::Duration::from_micros(200))
                .expect("job lock");
            pending = p;
            if *pending == 0 {
                break;
            }
            drop(pending);
        }
        let payload = job.panic.lock().expect("panic slot").take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }
}

/// A work-stealing pool of `workers` executors: `workers - 1` spawned
/// threads plus the thread submitting each job. See the module docs for the
/// design; most code reaches the pool implicitly through [`run_range`] /
/// [`with_workers`] rather than owning one.
///
/// Dropping the `Pool` handle shuts its workers down (they notice the flag
/// within one park timeout and exit). Shutdown cannot live on `PoolInner`'s
/// `Drop`: each worker keeps an `Arc<PoolInner>` alive for its lifetime, so
/// that destructor would never run and every dropped pool would leak its
/// threads. A job already in flight still completes after the handle drops —
/// deques and the injector live in `Shared`, and the submitting thread
/// participates until its job quiesces, draining any task the exiting
/// workers left behind.
pub struct Pool {
    inner: Arc<PoolInner>,
}

impl Drop for Pool {
    fn drop(&mut self) {
        let shared = &self.inner.shared;
        shared.shutdown.store(true, SeqCst);
        let _g = shared.wake_lock.lock().expect("wake lock");
        shared.wake.notify_all();
    }
}

impl Pool {
    /// Creates a pool with `workers` total executors (clamped to ≥ 1).
    /// `workers == 1` spawns no threads — every job runs inline on the
    /// submitter, which is also the `parallel`-feature-off behavior.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            deques: (0..workers.saturating_sub(1))
                .map(|_| Deque::new())
                .collect(),
            injector: Mutex::new(VecDeque::new()),
            sleepers: AtomicUsize::new(0),
            wake_lock: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let inner = Arc::new(PoolInner {
            shared: Arc::clone(&shared),
            workers,
        });
        for ix in 0..workers.saturating_sub(1) {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name(format!("volut-worker-{ix}"))
                .spawn(move || worker_main(inner, ix))
                .expect("spawn pool worker");
        }
        Pool { inner }
    }

    /// Total executor count of this pool (spawned workers + submitter).
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Runs `f` over disjoint sub-ranges covering `0..len`, splitting
    /// recursively down to at most `grain` elements per call. Blocks until
    /// every sub-range has executed; re-raises the first task panic.
    ///
    /// `f` must tolerate any partition of `0..len` into sub-ranges and any
    /// execution order/interleaving — in this codebase every caller writes
    /// disjoint output slots whose values depend only on the slot, which is
    /// the determinism contract the engine's bit-identity tests pin.
    pub fn run_range<F>(&self, len: usize, grain: usize, f: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        self.inner.run_range(len, grain, &f);
    }

    /// Runs `f` over disjoint sub-slices of `order`, splitting recursively
    /// down to at most `grain` elements per call — [`Pool::run_range`] over
    /// an explicit item permutation instead of `0..len`.
    ///
    /// This is the fairness/priority dispatch primitive for schedulers: the
    /// splitter keeps the *near* half and pushes the far half, so earlier
    /// positions in `order` are biased toward executing first (and, under
    /// work-stealing, toward being stolen last). A caller that sorts
    /// `order` longest-job-first therefore gets an LPT-style schedule —
    /// heavy items start early, light items backfill — without any
    /// per-item queue or priority heap. The bias is best-effort, never a
    /// guarantee: `f` must still tolerate any partition and any execution
    /// order, exactly as with `run_range`.
    pub fn run_order<F>(&self, order: &[u32], grain: usize, f: F)
    where
        F: Fn(&[u32]) + Sync,
    {
        self.inner
            .run_range(order.len(), grain, &|r: Range<usize>| {
                f(&order[r]);
            });
    }

    /// Installs this pool as the current pool of the calling thread for the
    /// duration of `f` (restoring the previous pool afterwards), then runs
    /// `f`. Parallel helpers called inside `f` route to this pool.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = CURRENT.with(|c| {
            c.borrow_mut().replace(ThreadPool {
                pool: Arc::clone(&self.inner),
                deque: None,
            })
        });
        let guard = RestoreCurrent(prev);
        let out = f();
        drop(guard);
        out
    }
}

/// Restores the previous thread-local pool even if `f` panics.
struct RestoreCurrent(Option<ThreadPool>);

impl Drop for RestoreCurrent {
    fn drop(&mut self) {
        let prev = self.0.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

/// Main loop of a spawned worker: execute own splits LIFO, drain the
/// injector, steal FIFO; park when the pool is idle.
fn worker_main(inner: Arc<PoolInner>, ix: usize) {
    CURRENT.with(|c| {
        *c.borrow_mut() = Some(ThreadPool {
            pool: Arc::clone(&inner),
            deque: Some(ix),
        });
    });
    let shared = &inner.shared;
    loop {
        if shared.shutdown.load(SeqCst) {
            return;
        }
        if let Some(task) = shared.find_task(Some(ix)) {
            execute(shared, Some(ix), task);
            continue;
        }
        // Park. The sleeper count is raised before the final re-check so a
        // concurrent `submit` either sees it (and notifies) or enqueued
        // before the re-check (and is found); the timeout backstops the
        // remaining benign race at a bounded latency. The re-check is
        // destructive (pop/steal/injector-pop all *remove* the task), so a
        // found task must be executed here — discarding it would strand the
        // job's pending count above zero and hang the submitter.
        shared.sleepers.fetch_add(1, SeqCst);
        let g = shared.wake_lock.lock().expect("wake lock");
        match shared.find_task(Some(ix)) {
            Some(task) => {
                drop(g);
                shared.sleepers.fetch_sub(1, SeqCst);
                execute(shared, Some(ix), task);
            }
            None if !shared.shutdown.load(SeqCst) => {
                let _ = shared
                    .wake
                    .wait_timeout(g, std::time::Duration::from_millis(5))
                    .expect("wake lock");
                shared.sleepers.fetch_sub(1, SeqCst);
            }
            None => {
                drop(g);
                shared.sleepers.fetch_sub(1, SeqCst);
            }
        }
    }
}

/// Resolves the worker count for the global pool alongside which source
/// decided it, so [`describe`] never attributes the count to `VOLUT_WORKERS`
/// when the variable was set but unparseable (or 0) and the machine
/// detection actually won.
fn resolve_workers() -> (usize, &'static str) {
    if let Ok(v) = std::env::var("VOLUT_WORKERS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return (n, "VOLUT_WORKERS");
            }
        }
    }
    match std::thread::available_parallelism() {
        Ok(n) => (n.get(), "available_parallelism"),
        Err(_) => (1, "fallback"),
    }
}

/// Resolves the worker count for the global pool: `VOLUT_WORKERS` when set
/// to anything ≥ 1, else the machine's [`std::thread::available_parallelism`],
/// else 1 (never a hard-coded guess — the old helpers defaulted to 4 when
/// detection failed, oversubscribing small hosts).
pub fn resolved_workers() -> usize {
    resolve_workers().0
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();

/// The lazily-initialized global pool (sized by [`resolved_workers`] at
/// first use).
pub fn global() -> &'static Pool {
    GLOBAL.get_or_init(|| Pool::new(resolved_workers()))
}

/// Executor count of the current pool: the [`with_workers`] scope's pool if
/// one is installed on this thread (or the thread is a pool worker), else
/// the global pool's.
pub fn current_workers() -> usize {
    CURRENT
        .with(|c| c.borrow().as_ref().map(|tp| tp.pool.workers))
        .unwrap_or_else(|| global().workers())
}

/// Runs `f` over `0..len` on the current pool (see [`Pool::run_range`]).
pub fn run_range<F>(len: usize, grain: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let installed = CURRENT.with(|c| c.borrow().as_ref().map(|tp| Arc::clone(&tp.pool)));
    match installed {
        Some(pool) => pool.run_range(len, grain, &f),
        None => global().run_range(len, grain, f),
    }
}

/// Runs `f` over the items of `order` on the current pool (see
/// [`Pool::run_order`] for the priority-bias contract).
pub fn run_order<F>(order: &[u32], grain: usize, f: F)
where
    F: Fn(&[u32]) + Sync,
{
    let installed = CURRENT.with(|c| c.borrow().as_ref().map(|tp| Arc::clone(&tp.pool)));
    match installed {
        Some(pool) => pool.run_range(order.len(), grain, &|r: Range<usize>| f(&order[r])),
        None => global().run_range(order.len(), grain, |r| f(&order[r])),
    }
}

/// Runs `f` with the current thread routed to a pool of exactly `workers`
/// executors — the scoped override used by tests, benches and the CI
/// worker-count matrix. Pools are cached per worker count, so repeated
/// scopes reuse threads instead of respawning them.
pub fn with_workers<R>(workers: usize, f: impl FnOnce() -> R) -> R {
    static SCOPED: OnceLock<Mutex<std::collections::HashMap<usize, Arc<Pool>>>> = OnceLock::new();
    let workers = workers.max(1);
    let pool = {
        let cache = SCOPED.get_or_init(|| Mutex::new(std::collections::HashMap::new()));
        let mut cache = cache.lock().expect("scoped pool cache");
        Arc::clone(
            cache
                .entry(workers)
                .or_insert_with(|| Arc::new(Pool::new(workers))),
        )
    };
    pool.install(f)
}

/// One-line description of the resolved runtime configuration, logged once
/// by the bench setup path so every recorded number names its worker count.
pub fn describe() -> String {
    let (workers, source) = resolve_workers();
    format!(
        "runtime: {workers} worker(s) (resolved from {source}), global pool {}",
        if GLOBAL.get().is_some() {
            "initialized"
        } else {
            "not yet initialized"
        }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn run_range_covers_every_index_exactly_once() {
        let pool = Pool::new(4);
        let hits: Vec<AtomicU32> = (0..10_000).map(|_| AtomicU32::new(0)).collect();
        pool.run_range(hits.len(), 64, |r| {
            for i in r {
                hits[i].fetch_add(1, SeqCst);
            }
        });
        assert!(hits.iter().all(|h| h.load(SeqCst) == 1));
    }

    #[test]
    fn empty_and_tiny_jobs() {
        let pool = Pool::new(4);
        pool.run_range(0, 16, |_| panic!("empty jobs never run the closure"));
        let ran = AtomicU32::new(0);
        pool.run_range(1, 16, |r| {
            assert_eq!(r, 0..1);
            ran.fetch_add(1, SeqCst);
        });
        assert_eq!(ran.load(SeqCst), 1);
    }

    #[test]
    fn single_worker_pool_runs_inline() {
        let pool = Pool::new(1);
        let tid = std::thread::current().id();
        let hits = AtomicU32::new(0);
        pool.run_range(100, 10, |r| {
            assert_eq!(std::thread::current().id(), tid);
            hits.fetch_add(r.len() as u32, SeqCst);
        });
        assert_eq!(hits.load(SeqCst), 100);
    }

    #[test]
    fn panic_in_task_propagates_to_submitter() {
        let pool = Pool::new(3);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_range(1000, 1, |r| {
                if r.contains(&517) {
                    panic!("boom at 517");
                }
            });
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert!(msg.contains("boom"), "unexpected payload: {msg}");
        // The pool survives the poisoned job and runs the next one.
        let hits = AtomicU32::new(0);
        pool.run_range(256, 8, |r| {
            hits.fetch_add(r.len() as u32, SeqCst);
        });
        assert_eq!(hits.load(SeqCst), 256);
    }

    #[test]
    fn nested_spawns_complete() {
        let pool = Pool::new(4);
        let total = AtomicU32::new(0);
        pool.install(|| {
            run_range(8, 1, |outer| {
                for _ in outer {
                    // Nested job from inside a task (or the submitter).
                    run_range(100, 10, |inner| {
                        total.fetch_add(inner.len() as u32, SeqCst);
                    });
                }
            });
        });
        assert_eq!(total.load(SeqCst), 800);
    }

    #[test]
    fn with_workers_scopes_the_pool_and_restores() {
        let outside = current_workers();
        with_workers(3, || {
            assert_eq!(current_workers(), 3);
            with_workers(2, || assert_eq!(current_workers(), 2));
            assert_eq!(current_workers(), 3);
        });
        assert_eq!(current_workers(), outside);
    }

    #[test]
    fn concurrent_executors_never_exceed_pool_size() {
        // The oversubscription regression: a 1000-chunk job on a small pool
        // must never run more than `workers` chunks at once (the scoped
        // helpers this runtime replaced spawned one thread per chunk).
        //
        // Private pool, NOT `with_workers`: the scoped cache is shared
        // process-wide, and under the multithreaded test harness another
        // test waiting on its own job participates via `find_task` and can
        // execute this job's tasks too — a legal `workers + 1`st executor
        // that would trip the `peak <= workers` bound being pinned here.
        let workers = 4;
        let live = AtomicIsize::new(0);
        let peak = AtomicIsize::new(0);
        let pool = Pool::new(workers);
        pool.install(|| {
            run_range(1000, 1, |r| {
                let now = live.fetch_add(1, SeqCst) + 1;
                peak.fetch_max(now, SeqCst);
                // Make overlap likely so the bound is actually exercised.
                for i in r {
                    std::hint::black_box(i);
                }
                std::thread::sleep(std::time::Duration::from_micros(50));
                live.fetch_sub(1, SeqCst);
            });
        });
        assert!(
            peak.load(SeqCst) <= workers as isize,
            "peak {} > pool size {workers}",
            peak.load(SeqCst)
        );
        assert!(peak.load(SeqCst) >= 1);
    }

    #[test]
    fn deque_lifo_fifo_discipline() {
        let d = Deque::new();
        let mk = |lo| Task {
            job: std::ptr::null(),
            lo,
            hi: lo + 1,
        };
        assert!(d.push(mk(1)).is_ok());
        assert!(d.push(mk(2)).is_ok());
        assert!(d.push(mk(3)).is_ok());
        // Thief takes the oldest, owner the newest.
        assert_eq!(d.steal().unwrap().lo, 1);
        assert_eq!(d.pop().unwrap().lo, 3);
        assert_eq!(d.pop().unwrap().lo, 2);
        assert!(d.pop().is_none());
        assert!(d.steal().is_none());
    }

    #[test]
    fn deque_overflow_is_reported() {
        let d = Deque::new();
        let mk = |lo| Task {
            job: std::ptr::null(),
            lo,
            hi: lo + 1,
        };
        for i in 0..DEQUE_CAP - 1 {
            assert!(d.push(mk(i)).is_ok());
        }
        assert!(d.push(mk(9999)).is_err());
    }

    #[test]
    fn stress_many_small_jobs() {
        let pool = Pool::new(4);
        for round in 0..50 {
            let sum = AtomicUsize::new(0);
            let n = 1 + (round * 37) % 500;
            pool.run_range(n, 3, |r| {
                sum.fetch_add(r.sum::<usize>(), SeqCst);
            });
            assert_eq!(sum.load(SeqCst), n * (n - 1) / 2, "round {round}");
        }
    }

    #[test]
    fn resolved_workers_is_at_least_one() {
        assert!(resolved_workers() >= 1);
    }

    #[test]
    fn run_order_visits_every_item_exactly_once() {
        let pool = Pool::new(4);
        // A permutation with gaps and duplicates-free reordering: reversed
        // even indices followed by odd ones.
        let order: Vec<u32> = (0..5_000u32)
            .rev()
            .filter(|i| i % 2 == 0)
            .chain((0..5_000).filter(|i| i % 2 == 1))
            .collect();
        let hits: Vec<AtomicU32> = (0..5_000).map(|_| AtomicU32::new(0)).collect();
        pool.run_order(&order, 64, |items| {
            for &i in items {
                hits[i as usize].fetch_add(1, SeqCst);
            }
        });
        assert!(hits.iter().all(|h| h.load(SeqCst) == 1));
    }

    #[test]
    fn run_order_chunks_are_contiguous_order_slices() {
        // Every callback slice must be a contiguous window of `order` —
        // that's what makes the near-half bias a priority bias over the
        // caller's sort.
        let pool = Pool::new(4);
        let order: Vec<u32> = (0..1_000u32).map(|i| i.wrapping_mul(7) % 1_000).collect();
        let ok = std::sync::atomic::AtomicBool::new(true);
        pool.run_order(&order, 32, |items| {
            assert!(!items.is_empty() && items.len() <= 32);
            // Locate the slice inside `order` by pointer arithmetic.
            let base = order.as_ptr() as usize;
            let off = items.as_ptr() as usize - base;
            if off % std::mem::size_of::<u32>() != 0 {
                ok.store(false, SeqCst);
            }
        });
        assert!(ok.load(SeqCst));
    }

    #[test]
    fn run_order_free_fn_empty_and_single() {
        super::run_order(&[], 16, |_| panic!("empty order never runs"));
        let ran = AtomicU32::new(0);
        super::run_order(&[7], 16, |items| {
            assert_eq!(items, &[7]);
            ran.fetch_add(1, SeqCst);
        });
        assert_eq!(ran.load(SeqCst), 1);
    }

    #[test]
    fn run_order_front_bias_on_single_worker() {
        // With one executor the near-half-first split is fully
        // deterministic: items must execute exactly in `order` order.
        let pool = Pool::new(1);
        let order: Vec<u32> = [9, 3, 7, 1, 8, 0, 2, 6, 4, 5].into();
        let seen = Mutex::new(Vec::new());
        pool.run_order(&order, 2, |items| {
            seen.lock().unwrap().extend_from_slice(items);
        });
        assert_eq!(seen.into_inner().unwrap(), order);
    }
}

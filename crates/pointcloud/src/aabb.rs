//! Axis-aligned bounding boxes.

use crate::point::Point3;
use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box in 3D.
///
/// Used by the spatial indices (octree, voxel grid) and by the position
/// encoding stage of the LUT pipeline to normalize neighborhoods.
///
/// # Example
///
/// ```
/// use volut_pointcloud::{Aabb, Point3};
/// let b = Aabb::from_points([Point3::new(0.0, 0.0, 0.0), Point3::new(2.0, 4.0, 6.0)]).unwrap();
/// assert_eq!(b.center(), Point3::new(1.0, 2.0, 3.0));
/// assert_eq!(b.extent(), Point3::new(2.0, 4.0, 6.0));
/// assert!(b.contains(Point3::new(1.0, 1.0, 1.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Point3,
    /// Maximum corner.
    pub max: Point3,
}

impl Aabb {
    /// Creates a bounding box from two corners; the corners are swapped
    /// component-wise if necessary so that `min <= max` holds.
    pub fn new(a: Point3, b: Point3) -> Self {
        Self {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// Computes the bounding box of an iterator of points, or `None` when the
    /// iterator is empty.
    pub fn from_points<I>(points: I) -> Option<Self>
    where
        I: IntoIterator<Item = Point3>,
    {
        let mut iter = points.into_iter();
        let first = iter.next()?;
        let mut min = first;
        let mut max = first;
        for p in iter {
            min = min.min(p);
            max = max.max(p);
        }
        Some(Self { min, max })
    }

    /// The geometric center of the box.
    #[inline]
    pub fn center(&self) -> Point3 {
        (self.min + self.max) * 0.5
    }

    /// The edge lengths of the box.
    #[inline]
    pub fn extent(&self) -> Point3 {
        self.max - self.min
    }

    /// Half the diagonal length; a convenient "radius" for normalization.
    #[inline]
    pub fn half_diagonal(&self) -> f32 {
        self.extent().norm() * 0.5
    }

    /// Length of the longest edge.
    #[inline]
    pub fn longest_edge(&self) -> f32 {
        self.extent().max_element()
    }

    /// Returns `true` when `p` lies inside the box (inclusive bounds).
    #[inline]
    pub fn contains(&self, p: Point3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// Grows the box so that it also contains `p`.
    pub fn expand(&mut self, p: Point3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Returns a box inflated by `margin` on every side.
    ///
    /// # Panics
    /// Panics in debug builds if `margin` is negative.
    pub fn inflated(&self, margin: f32) -> Aabb {
        debug_assert!(margin >= 0.0, "margin must be non-negative");
        Aabb {
            min: self.min - Point3::splat(margin),
            max: self.max + Point3::splat(margin),
        }
    }

    /// Squared distance from `p` to the closest point of the box
    /// (zero when `p` is inside). Used for k-d tree / octree pruning.
    #[inline]
    pub fn distance_squared_to(&self, p: Point3) -> f32 {
        let mut d2 = 0.0f32;
        for axis in 0..3 {
            let v = p[axis];
            if v < self.min[axis] {
                let d = self.min[axis] - v;
                d2 += d * d;
            } else if v > self.max[axis] {
                let d = v - self.max[axis];
                d2 += d * d;
            }
        }
        d2
    }

    /// Squared distance between the closest points of two boxes (zero when
    /// they touch or overlap). This is the node-pair rejection test of the
    /// dual-tree all-kNN traversal: a (query-node, reference-node) pair whose
    /// boxes are farther apart than the query group's pruning bound cannot
    /// contribute any neighbor, so whole subtree pairs are discarded with
    /// three axis gap computations.
    #[inline]
    pub fn distance_squared_to_aabb(&self, other: &Aabb) -> f32 {
        let mut d2 = 0.0f32;
        for axis in 0..3 {
            // The per-axis gap between the two intervals; at most one of the
            // two differences is positive (they overlap otherwise).
            let gap = (self.min[axis] - other.max[axis]).max(other.min[axis] - self.max[axis]);
            if gap > 0.0 {
                d2 += gap * gap;
            }
        }
        d2
    }

    /// Splits the box into 8 octants around its center, ordered by octant
    /// index `(x_hi << 2) | (y_hi << 1) | z_hi`.
    pub fn octants(&self) -> [Aabb; 8] {
        let c = self.center();
        let mut out = [*self; 8];
        for (i, o) in out.iter_mut().enumerate() {
            let xs = if i & 0b100 != 0 {
                (c.x, self.max.x)
            } else {
                (self.min.x, c.x)
            };
            let ys = if i & 0b010 != 0 {
                (c.y, self.max.y)
            } else {
                (self.min.y, c.y)
            };
            let zs = if i & 0b001 != 0 {
                (c.z, self.max.z)
            } else {
                (self.min.z, c.z)
            };
            *o = Aabb {
                min: Point3::new(xs.0, ys.0, zs.0),
                max: Point3::new(xs.1, ys.1, zs.1),
            };
        }
        out
    }

    /// Octant index of `p` relative to the box center.
    #[inline]
    pub fn octant_of(&self, p: Point3) -> usize {
        let c = self.center();
        (usize::from(p.x >= c.x) << 2) | (usize::from(p.y >= c.y) << 1) | usize::from(p.z >= c.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_swaps_corners() {
        let b = Aabb::new(Point3::new(1.0, -1.0, 5.0), Point3::new(0.0, 2.0, 3.0));
        assert_eq!(b.min, Point3::new(0.0, -1.0, 3.0));
        assert_eq!(b.max, Point3::new(1.0, 2.0, 5.0));
    }

    #[test]
    fn from_points_empty_is_none() {
        assert!(Aabb::from_points(std::iter::empty()).is_none());
    }

    #[test]
    fn contains_and_expand() {
        let mut b = Aabb::new(Point3::ZERO, Point3::ONE);
        assert!(b.contains(Point3::splat(0.5)));
        assert!(!b.contains(Point3::splat(1.5)));
        b.expand(Point3::splat(2.0));
        assert!(b.contains(Point3::splat(1.5)));
    }

    #[test]
    fn distance_squared_inside_is_zero() {
        let b = Aabb::new(Point3::ZERO, Point3::ONE);
        assert_eq!(b.distance_squared_to(Point3::splat(0.5)), 0.0);
        assert!((b.distance_squared_to(Point3::new(2.0, 0.5, 0.5)) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn aabb_to_aabb_distance() {
        let a = Aabb::new(Point3::ZERO, Point3::ONE);
        // Overlapping and touching boxes are at distance zero.
        assert_eq!(a.distance_squared_to_aabb(&a), 0.0);
        let touching = Aabb::new(Point3::new(1.0, 0.0, 0.0), Point3::new(2.0, 1.0, 1.0));
        assert_eq!(a.distance_squared_to_aabb(&touching), 0.0);
        // Separated along one axis: gap of 1 on x.
        let b = Aabb::new(Point3::new(2.0, 0.0, 0.0), Point3::new(3.0, 1.0, 1.0));
        assert!((a.distance_squared_to_aabb(&b) - 1.0).abs() < 1e-6);
        assert_eq!(
            a.distance_squared_to_aabb(&b),
            b.distance_squared_to_aabb(&a)
        );
        // Diagonal separation sums the per-axis gaps.
        let c = Aabb::new(Point3::splat(3.0), Point3::splat(4.0));
        assert!((a.distance_squared_to_aabb(&c) - 12.0).abs() < 1e-6);
        // Consistency with the point distance: a degenerate box is a point.
        let p = Point3::new(-2.0, 0.5, 0.5);
        let degenerate = Aabb::new(p, p);
        assert_eq!(
            a.distance_squared_to_aabb(&degenerate),
            a.distance_squared_to(p)
        );
    }

    #[test]
    fn octants_partition_the_box() {
        let b = Aabb::new(Point3::ZERO, Point3::splat(2.0));
        let octs = b.octants();
        // Every octant has half the edge length and is contained in the parent.
        for o in &octs {
            assert!((o.extent().x - 1.0).abs() < 1e-6);
            assert!(b.contains(o.center()));
        }
        // The octant index agrees with octant_of for the octant center.
        for (i, o) in octs.iter().enumerate() {
            assert_eq!(b.octant_of(o.center()), i);
        }
    }

    #[test]
    fn inflated_grows_symmetrically() {
        let b = Aabb::new(Point3::ZERO, Point3::ONE).inflated(0.5);
        assert_eq!(b.min, Point3::splat(-0.5));
        assert_eq!(b.max, Point3::splat(1.5));
    }

    #[test]
    fn half_diagonal_and_longest_edge() {
        let b = Aabb::new(Point3::ZERO, Point3::new(3.0, 4.0, 0.0));
        assert!((b.half_diagonal() - 2.5).abs() < 1e-6);
        assert_eq!(b.longest_edge(), 4.0);
    }
}

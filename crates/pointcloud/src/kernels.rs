//! The one squared-distance kernel every spatial backend scans with.
//!
//! Before this module each backend carried its own leaf-scan loop around
//! [`Point3::distance_squared`]; besides the duplication, the
//! array-of-structs loads kept the compiler from vectorizing the hot loop.
//! All candidate scans now run through here, over [`SoaPositions`] lanes:
//!
//! * `scan_ids` — kNN candidate scan into a `BestK` accumulator (the
//!   kernel behind every backend's `knn`/`knn_batch`);
//! * `scan_radius_ids` — radius-query variant collecting [`Neighbor`]s;
//! * [`norm_squared_lanes`] — elementwise `x² + y² + z²` over plain lanes,
//!   exported for the LUT refiner's blocked key encoder in `volut-core`;
//! * [`pair_midpoints_into`] — gathered pair-midpoint generation over
//!   [`SoaPositions`], exported for the interpolators' recomputed-row batch.
//!
//! With the default-on `simd` feature and a runtime AVX2 check, the scan
//! runs 8 lanes per iteration with an explicit compare-mask pre-filter; the
//! scalar fallback performs the same arithmetic in the same order
//! (`dx·dx + dy·dy + dz·dz`, no FMA contraction), so the two paths are
//! **bit-identical** — including index-broken distance ties — and the
//! feature flag can never change results.

use crate::knn::Neighbor;
use crate::point::Point3;
use crate::soa::SoaPositions;

pub use crate::soa::LANES;

/// The accumulator interface of the candidate scans: anything that exposes a
/// current worst (k-th best) squared distance and accepts `(index, d2, pos)`
/// offers. [`crate::knn::BestK`] implements it for the per-query and
/// single-tree batch paths; the dual-tree all-kNN of [`crate::dualtree`]
/// implements it over flat per-query key rows. The scans are generic over
/// this trait so **one** kernel (scalar / AVX2 / AVX-512) serves every
/// traversal — the accumulators monomorphize away and the arithmetic stays
/// bit-identical across paths by construction.
pub(crate) trait ScanSink {
    /// Squared distance of the current worst entry (the universal prune /
    /// pre-filter bound; `INFINITY` until the accumulator has `k` entries).
    fn worst_d2(&self) -> f32;
    /// Offers a candidate at position `pos` with squared distance `d2`.
    fn push(&mut self, index: usize, d2: f32, pos: Point3);
}

/// Squared distances from `q` to one [`LANES`]-wide window of coordinates.
///
/// The arithmetic is exactly `dx*dx + dy*dy + dz*dz` per lane — the same
/// operations, in the same order, as [`Point3::distance_squared`] — so every
/// path built on this block agrees bit-for-bit with the scalar formulation.
#[inline(always)]
fn dist2_block(xs: &[f32; LANES], ys: &[f32; LANES], zs: &[f32; LANES], q: Point3) -> [f32; LANES] {
    let mut out = [0.0f32; LANES];
    for j in 0..LANES {
        let dx = xs[j] - q.x;
        let dy = ys[j] - q.y;
        let dz = zs[j] - q.z;
        out[j] = dx * dx + dy * dy + dz * dz;
    }
    out
}

/// Full-width window starting at `i`; sound for any `i < soa.len()` thanks
/// to the SoA store's one-block overallocation (see [`SoaPositions`]).
#[inline(always)]
fn window(lane: &[f32], i: usize) -> &[f32; LANES] {
    lane[i..i + LANES].try_into().expect("padded SoA window")
}

/// Best-effort read prefetch of the cache line holding `p` (no-op on
/// non-x86 targets). Used by the batched kNN driver to hide the latency of
/// its permuted query loads.
#[inline(always)]
pub(crate) fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a hint; any address is allowed.
    unsafe {
        std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(p.cast());
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Returns `true` when the AVX2 kernel paths may be used.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[inline]
fn avx2_enabled() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

/// Returns `true` when the AVX-512 kernel paths may be used.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[inline]
fn avx512_enabled() -> bool {
    std::arch::is_x86_feature_detected!("avx512f")
}

/// Scans slots `start..end` of `soa`, offering every candidate whose squared
/// distance can still matter to `best`; `ids[slot]` maps a slot back to the
/// original point index. This is the shared leaf/cell scan of the kd-tree,
/// octree, voxel grid and brute-force backends.
///
/// Candidates are pre-filtered with `d2 <= best.worst_d2()` (equality passes
/// through so index-broken ties behave exactly like [`BestK::push`] alone);
/// the filter only skips candidates `push` would reject anyway, so results
/// are identical to an unfiltered scan for any non-NaN input.
#[inline]
pub(crate) fn scan_ids<S: ScanSink>(
    soa: &SoaPositions,
    ids: &[u32],
    start: usize,
    end: usize,
    q: Point3,
    best: &mut S,
) {
    debug_assert!(end <= soa.len() && end <= ids.len());
    if start >= end {
        return;
    }
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if avx512_enabled() {
            // SAFETY: AVX-512F availability checked at runtime just above.
            unsafe { scan_ids_avx512(soa, ids, start, end, q, best) };
            return;
        }
        if avx2_enabled() {
            // SAFETY: AVX2 availability checked at runtime just above.
            unsafe { scan_ids_avx2(soa, ids, start, end, q, best) };
            return;
        }
    }
    scan_ids_scalar(soa, ids, start, end, q, best);
}

fn scan_ids_scalar<S: ScanSink>(
    soa: &SoaPositions,
    ids: &[u32],
    start: usize,
    end: usize,
    q: Point3,
    best: &mut S,
) {
    let (xs, ys, zs) = (soa.xs(), soa.ys(), soa.zs());
    let mut i = start;
    while i < end {
        let d2 = dist2_block(window(xs, i), window(ys, i), window(zs, i), q);
        let m = LANES.min(end - i);
        for (j, &d) in d2.iter().enumerate().take(m) {
            if d <= best.worst_d2() {
                let pos = Point3::new(xs[i + j], ys[i + j], zs[i + j]);
                best.push(ids[i + j] as usize, d, pos);
            }
        }
        i += LANES;
    }
}

/// AVX2 scan: 8 candidate distances per iteration, with a vector compare
/// against the current k-th best so blocks with no viable candidate cost a
/// single mask test. Lanes surviving the mask are re-checked (the bound only
/// tightens) and pushed in lane order — bit-identical to the scalar path.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
unsafe fn scan_ids_avx2<S: ScanSink>(
    soa: &SoaPositions,
    ids: &[u32],
    start: usize,
    end: usize,
    q: Point3,
    best: &mut S,
) {
    use std::arch::x86_64::*;
    let (xs, ys, zs) = (soa.xs(), soa.ys(), soa.zs());
    let qx = _mm256_set1_ps(q.x);
    let qy = _mm256_set1_ps(q.y);
    let qz = _mm256_set1_ps(q.z);
    let mut i = start;
    while i < end {
        // Explicit mul + add (NOT fmadd): keeps the arithmetic bit-identical
        // to the scalar kernel and to the pre-SoA `distance_squared` loops.
        let dx = _mm256_sub_ps(_mm256_loadu_ps(xs.as_ptr().add(i)), qx);
        let dy = _mm256_sub_ps(_mm256_loadu_ps(ys.as_ptr().add(i)), qy);
        let dz = _mm256_sub_ps(_mm256_loadu_ps(zs.as_ptr().add(i)), qz);
        let d2v = _mm256_add_ps(
            _mm256_add_ps(_mm256_mul_ps(dx, dx), _mm256_mul_ps(dy, dy)),
            _mm256_mul_ps(dz, dz),
        );
        let m = LANES.min(end - i);
        let wd = _mm256_set1_ps(best.worst_d2());
        let le = _mm256_cmp_ps::<_CMP_LE_OQ>(d2v, wd);
        let mut bits = (_mm256_movemask_ps(le) as u32) & ((1u32 << m) - 1);
        if bits != 0 {
            let mut d2 = [0.0f32; LANES];
            _mm256_storeu_ps(d2.as_mut_ptr(), d2v);
            while bits != 0 {
                let j = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                // The worst may have tightened since the vector compare.
                if d2[j] <= best.worst_d2() {
                    let pos = Point3::new(xs[i + j], ys[i + j], zs[i + j]);
                    best.push(ids[i + j] as usize, d2[j], pos);
                }
            }
        }
        i += LANES;
    }
}

/// AVX-512 scan: 16 candidate distances per iteration with a native
/// compare-to-mask against the current k-th best. Same explicit mul + add
/// arithmetic and same ascending-lane push order as the scalar path — the
/// SoA store guarantees `2 × LANES` of padding, so the 16-wide loads are
/// always in bounds.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx512f")]
unsafe fn scan_ids_avx512<S: ScanSink>(
    soa: &SoaPositions,
    ids: &[u32],
    start: usize,
    end: usize,
    q: Point3,
    best: &mut S,
) {
    use std::arch::x86_64::*;
    const W: usize = 2 * LANES;
    let (xs, ys, zs) = (soa.xs(), soa.ys(), soa.zs());
    let qx = _mm512_set1_ps(q.x);
    let qy = _mm512_set1_ps(q.y);
    let qz = _mm512_set1_ps(q.z);
    let mut i = start;
    while i < end {
        // Explicit mul + add (NOT fmadd): keeps the arithmetic bit-identical
        // to the scalar kernel.
        let dx = _mm512_sub_ps(_mm512_loadu_ps(xs.as_ptr().add(i)), qx);
        let dy = _mm512_sub_ps(_mm512_loadu_ps(ys.as_ptr().add(i)), qy);
        let dz = _mm512_sub_ps(_mm512_loadu_ps(zs.as_ptr().add(i)), qz);
        let d2v = _mm512_add_ps(
            _mm512_add_ps(_mm512_mul_ps(dx, dx), _mm512_mul_ps(dy, dy)),
            _mm512_mul_ps(dz, dz),
        );
        let m = W.min(end - i);
        let wd = _mm512_set1_ps(best.worst_d2());
        let le: u16 = _mm512_cmp_ps_mask::<_CMP_LE_OQ>(d2v, wd);
        let mut bits = (le as u32) & (((1u32 << (m - 1)) << 1) - 1);
        if bits != 0 {
            let mut d2 = [0.0f32; W];
            _mm512_storeu_ps(d2.as_mut_ptr(), d2v);
            while bits != 0 {
                let j = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                // The worst may have tightened since the vector compare.
                if d2[j] <= best.worst_d2() {
                    let pos = Point3::new(xs[i + j], ys[i + j], zs[i + j]);
                    best.push(ids[i + j] as usize, d2[j], pos);
                }
            }
        }
        i += W;
    }
}

/// Radius-query variant of [`scan_ids`]: appends every slot in
/// `start..end` with squared distance `<= r2` to `out`, in slot order.
pub(crate) fn scan_radius_ids(
    soa: &SoaPositions,
    ids: &[u32],
    start: usize,
    end: usize,
    q: Point3,
    r2: f32,
    out: &mut Vec<Neighbor>,
) {
    debug_assert!(end <= soa.len() && end <= ids.len());
    let (xs, ys, zs) = (soa.xs(), soa.ys(), soa.zs());
    let mut i = start;
    while i < end {
        let d2 = dist2_block(window(xs, i), window(ys, i), window(zs, i), q);
        let m = LANES.min(end - i);
        for (j, &d) in d2.iter().enumerate().take(m) {
            if d <= r2 {
                out.push(Neighbor {
                    index: ids[i + j] as usize,
                    distance_squared: d,
                });
            }
        }
        i += LANES;
    }
}

/// Elementwise `out[i] = xs[i]² + ys[i]² + zs[i]²` over plain (unpadded)
/// lanes. Exported for `volut-core`'s blocked LUT key encoder, which gathers
/// center-relative neighbor offsets into SoA lanes and needs their squared
/// norms with exactly [`Point3::norm_squared`]'s arithmetic.
///
/// # Panics
/// Panics when the four slices differ in length.
pub fn norm_squared_lanes(xs: &[f32], ys: &[f32], zs: &[f32], out: &mut [f32]) {
    assert!(
        xs.len() == ys.len() && xs.len() == zs.len() && xs.len() == out.len(),
        "norm_squared_lanes: mismatched lane lengths"
    );
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if avx2_enabled() {
        // SAFETY: AVX2 availability checked at runtime just above.
        unsafe { norm_squared_lanes_avx2(xs, ys, zs, out) };
        return;
    }
    for i in 0..xs.len() {
        out[i] = xs[i] * xs[i] + ys[i] * ys[i] + zs[i] * zs[i];
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
unsafe fn norm_squared_lanes_avx2(xs: &[f32], ys: &[f32], zs: &[f32], out: &mut [f32]) {
    use std::arch::x86_64::*;
    let n = xs.len();
    let mut i = 0;
    while i + LANES <= n {
        let x = _mm256_loadu_ps(xs.as_ptr().add(i));
        let y = _mm256_loadu_ps(ys.as_ptr().add(i));
        let z = _mm256_loadu_ps(zs.as_ptr().add(i));
        let n2 = _mm256_add_ps(
            _mm256_add_ps(_mm256_mul_ps(x, x), _mm256_mul_ps(y, y)),
            _mm256_mul_ps(z, z),
        );
        _mm256_storeu_ps(out.as_mut_ptr().add(i), n2);
        i += LANES;
    }
    while i < n {
        out[i] = xs[i] * xs[i] + ys[i] * ys[i] + zs[i] * zs[i];
        i += 1;
    }
}

/// Midpoints of gathered index pairs: `out[i] = midpoint(soa[a[i]], soa[b[i]])`.
///
/// This is the generation kernel behind the interpolators' recomputed-row
/// batch: partner pairs for every row that must be recomputed are drawn up
/// front, then one call produces the new points with 8-wide AVX2 index
/// gathers over the SoA coordinate lanes. The scalar fallback performs
/// exactly [`Point3::midpoint`]'s arithmetic — `0.5 * (a + b)` per component;
/// IEEE-754 multiplication is commutative, so the vector form `(a + b) * 0.5`
/// is bit-identical — making the `simd` feature invisible to interpolation
/// results.
///
/// # Panics
/// Panics when `a`, `b` and `out` differ in length, or when any index is out
/// of bounds for `soa`.
pub fn pair_midpoints_into(soa: &SoaPositions, a: &[u32], b: &[u32], out: &mut [Point3]) {
    assert!(
        a.len() == b.len() && a.len() == out.len(),
        "pair_midpoints_into: mismatched pair/output lengths"
    );
    let n = soa.len() as u32;
    assert!(
        a.iter().chain(b.iter()).all(|&i| i < n),
        "pair_midpoints_into: pair index out of range"
    );
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if avx2_enabled() {
        // SAFETY: AVX2 availability checked at runtime just above, and every
        // gather index was bounds-checked against the SoA length.
        unsafe { pair_midpoints_avx2(soa, a, b, out) };
        return;
    }
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = soa.get(a[i] as usize).midpoint(soa.get(b[i] as usize));
    }
}

/// AVX2 pair-midpoint kernel: 8 pairs per iteration via 32-bit index gathers
/// from the coordinate lanes, then one add + mul per lane.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
unsafe fn pair_midpoints_avx2(soa: &SoaPositions, a: &[u32], b: &[u32], out: &mut [Point3]) {
    use std::arch::x86_64::*;
    let (xs, ys, zs) = (soa.xs(), soa.ys(), soa.zs());
    let half = _mm256_set1_ps(0.5);
    let n = out.len();
    let mut i = 0;
    while i + LANES <= n {
        let ia = _mm256_loadu_si256(a.as_ptr().add(i).cast());
        let ib = _mm256_loadu_si256(b.as_ptr().add(i).cast());
        // Explicit add then mul (NOT fmadd): `(a + b) * 0.5` matches the
        // scalar `midpoint` bit-for-bit (IEEE mul is commutative).
        let mx = _mm256_mul_ps(
            _mm256_add_ps(
                _mm256_i32gather_ps::<4>(xs.as_ptr(), ia),
                _mm256_i32gather_ps::<4>(xs.as_ptr(), ib),
            ),
            half,
        );
        let my = _mm256_mul_ps(
            _mm256_add_ps(
                _mm256_i32gather_ps::<4>(ys.as_ptr(), ia),
                _mm256_i32gather_ps::<4>(ys.as_ptr(), ib),
            ),
            half,
        );
        let mz = _mm256_mul_ps(
            _mm256_add_ps(
                _mm256_i32gather_ps::<4>(zs.as_ptr(), ia),
                _mm256_i32gather_ps::<4>(zs.as_ptr(), ib),
            ),
            half,
        );
        let mut lx = [0.0f32; LANES];
        let mut ly = [0.0f32; LANES];
        let mut lz = [0.0f32; LANES];
        _mm256_storeu_ps(lx.as_mut_ptr(), mx);
        _mm256_storeu_ps(ly.as_mut_ptr(), my);
        _mm256_storeu_ps(lz.as_mut_ptr(), mz);
        for j in 0..LANES {
            out[i + j] = Point3::new(lx[j], ly[j], lz[j]);
        }
        i += LANES;
    }
    while i < n {
        out[i] = soa.get(a[i] as usize).midpoint(soa.get(b[i] as usize));
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::BestK;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn random_points(n: usize, seed: u64) -> Vec<Point3> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point3::new(
                    rng.random_range(-4.0..4.0),
                    rng.random_range(-4.0..4.0),
                    rng.random_range(-4.0..4.0),
                )
            })
            .collect()
    }

    /// Whatever paths are compiled in (AVX2 + scalar, or scalar alone), the
    /// scan must agree bit-for-bit with a plain `distance_squared` loop
    /// through the same `BestK` — the contract that makes the `simd` feature
    /// invisible to every backend built on this kernel.
    #[test]
    fn scan_matches_scalar_reference_bitwise() {
        let pts = random_points(100, 9);
        let mut soa = SoaPositions::default();
        soa.fill(&pts);
        let ids: Vec<u32> = (0..pts.len() as u32).collect();
        for (qi, &q) in random_points(20, 10).iter().enumerate() {
            for k in [1usize, 3, 8] {
                for (start, end) in [(0usize, pts.len()), (5, 9), (7, 63), (97, 100)] {
                    let mut best = BestK::default();
                    best.begin(k);
                    scan_ids(&soa, &ids, start, end, q, &mut best);
                    let mut reference = BestK::default();
                    reference.begin(k);
                    for (i, &p) in pts.iter().enumerate().take(end).skip(start) {
                        reference.push(i, p.distance_squared(q), p);
                    }
                    let got: Vec<(usize, f32)> = best
                        .sorted()
                        .iter()
                        .map(|n| (n.index, n.distance_squared))
                        .collect();
                    let want: Vec<(usize, f32)> = reference
                        .sorted()
                        .iter()
                        .map(|n| (n.index, n.distance_squared))
                        .collect();
                    assert_eq!(got, want, "query {qi} k {k} range {start}..{end}");
                }
            }
        }
    }

    #[test]
    fn scan_handles_duplicate_ties_by_index() {
        // 20 identical points: the k best must be the lowest indices.
        let pts = vec![Point3::ONE; 20];
        let mut soa = SoaPositions::default();
        soa.fill(&pts);
        let ids: Vec<u32> = (0..20).collect();
        let mut best = BestK::default();
        best.begin(6);
        scan_ids(&soa, &ids, 0, 20, Point3::ZERO, &mut best);
        let idx: Vec<usize> = best.sorted().iter().map(|n| n.index).collect();
        assert_eq!(idx, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn radius_scan_matches_reference() {
        let pts = random_points(70, 11);
        let mut soa = SoaPositions::default();
        soa.fill(&pts);
        let ids: Vec<u32> = (0..pts.len() as u32).collect();
        let q = Point3::new(0.5, -0.5, 0.25);
        let r2 = 4.0f32;
        let mut got = Vec::new();
        scan_radius_ids(&soa, &ids, 0, pts.len(), q, r2, &mut got);
        let want: Vec<(usize, f32)> = pts
            .iter()
            .enumerate()
            .filter_map(|(i, &p)| {
                let d2 = p.distance_squared(q);
                (d2 <= r2).then_some((i, d2))
            })
            .collect();
        assert_eq!(
            got.iter()
                .map(|n| (n.index, n.distance_squared))
                .collect::<Vec<_>>(),
            want
        );
    }

    /// Whatever paths are compiled in, the pair-midpoint kernel must agree
    /// bit-for-bit with a scalar `Point3::midpoint` loop — including
    /// duplicate pairs, self-pairs, and ragged (non-lane-multiple) lengths.
    #[test]
    fn pair_midpoints_match_scalar_reference_bitwise() {
        let pts = random_points(200, 21);
        let mut soa = SoaPositions::default();
        soa.fill(&pts);
        let mut rng = StdRng::seed_from_u64(22);
        for n in [0usize, 1, 7, 8, 9, 64, 131] {
            let a: Vec<u32> = (0..n)
                .map(|_| rng.random_range(0..pts.len() as u32))
                .collect();
            let mut b: Vec<u32> = (0..n)
                .map(|_| rng.random_range(0..pts.len() as u32))
                .collect();
            if n > 2 {
                b[0] = a[0]; // self-pair
                b[1] = b[2]; // duplicate partner
            }
            let mut got = vec![Point3::ZERO; n];
            pair_midpoints_into(&soa, &a, &b, &mut got);
            for i in 0..n {
                let want = pts[a[i] as usize].midpoint(pts[b[i] as usize]);
                assert_eq!(got[i].x.to_bits(), want.x.to_bits(), "pair {i} of {n}");
                assert_eq!(got[i].y.to_bits(), want.y.to_bits(), "pair {i} of {n}");
                assert_eq!(got[i].z.to_bits(), want.z.to_bits(), "pair {i} of {n}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "pair index out of range")]
    fn pair_midpoints_reject_out_of_range_indices() {
        let mut soa = SoaPositions::default();
        soa.fill(&[Point3::ZERO, Point3::ONE]);
        let mut out = vec![Point3::ZERO; 1];
        pair_midpoints_into(&soa, &[0], &[2], &mut out);
    }

    #[test]
    fn norm_squared_lanes_matches_point_norms() {
        let pts = random_points(37, 13);
        let xs: Vec<f32> = pts.iter().map(|p| p.x).collect();
        let ys: Vec<f32> = pts.iter().map(|p| p.y).collect();
        let zs: Vec<f32> = pts.iter().map(|p| p.z).collect();
        let mut out = vec![0.0f32; pts.len()];
        norm_squared_lanes(&xs, &ys, &zs, &mut out);
        for (i, &p) in pts.iter().enumerate() {
            assert_eq!(out[i], p.norm_squared(), "lane {i}");
        }
    }
}

//! A k-d tree neighbor-search backend.
//!
//! This stands in for the cuKDTree GPU k-d tree used by the paper's CUDA
//! client: an exact, cache-friendly, array-backed k-d tree with median
//! splits. It is the default backend for the Yuzu/GradPU baselines, while
//! the VoLUT pipeline itself prefers the two-layer octree of
//! [`crate::octree`].

use crate::knn::{finalize_candidates, Neighbor, NeighborSearch};
use crate::point::Point3;

/// Maximum number of points stored in a leaf before the builder splits it.
const LEAF_SIZE: usize = 16;

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// Range into `KdTree::order`.
        start: usize,
        end: usize,
    },
    Split {
        axis: usize,
        value: f32,
        left: usize,
        right: usize,
    },
}

/// An array-backed k-d tree over a fixed point set.
///
/// # Example
///
/// ```
/// use volut_pointcloud::{kdtree::KdTree, knn::NeighborSearch, Point3};
/// let pts: Vec<Point3> = (0..100).map(|i| Point3::new(i as f32, 0.0, 0.0)).collect();
/// let tree = KdTree::build(&pts);
/// let nn = tree.knn(Point3::new(42.4, 0.0, 0.0), 3);
/// assert_eq!(nn[0].index, 42);
/// ```
#[derive(Debug, Clone)]
pub struct KdTree {
    points: Vec<Point3>,
    /// Permutation of point indices; leaves reference contiguous ranges.
    order: Vec<usize>,
    nodes: Vec<Node>,
    root: usize,
}

impl KdTree {
    /// Builds a k-d tree over the given points (copied into the tree).
    pub fn build(points: &[Point3]) -> Self {
        let mut tree = KdTree {
            points: points.to_vec(),
            order: (0..points.len()).collect(),
            nodes: Vec::new(),
            root: 0,
        };
        if points.is_empty() {
            tree.nodes.push(Node::Leaf { start: 0, end: 0 });
            return tree;
        }
        let n = points.len();
        tree.root = tree.build_range(0, n, 0);
        tree
    }

    /// The indexed points, in their original order.
    pub fn points(&self) -> &[Point3] {
        &self.points
    }

    #[allow(clippy::only_used_in_recursion)] // depth is the conventional k-d recursion parameter
    fn build_range(&mut self, start: usize, end: usize, depth: usize) -> usize {
        let count = end - start;
        if count <= LEAF_SIZE {
            self.nodes.push(Node::Leaf { start, end });
            return self.nodes.len() - 1;
        }
        // Pick the axis with the largest spread for better balance than
        // round-robin on skewed data.
        let axis = {
            let mut min = Point3::splat(f32::INFINITY);
            let mut max = Point3::splat(f32::NEG_INFINITY);
            for &i in &self.order[start..end] {
                min = min.min(self.points[i]);
                max = max.max(self.points[i]);
            }
            let ext = max - min;
            if ext.x >= ext.y && ext.x >= ext.z {
                0
            } else if ext.y >= ext.z {
                1
            } else {
                2
            }
        };
        let mid = start + count / 2;
        let points = &self.points;
        self.order[start..end].select_nth_unstable_by(count / 2, |&a, &b| {
            points[a][axis].total_cmp(&points[b][axis])
        });
        let value = self.points[self.order[mid]][axis];
        let left = self.build_range(start, mid, depth + 1);
        let right = self.build_range(mid, end, depth + 1);
        self.nodes.push(Node::Split {
            axis,
            value,
            left,
            right,
        });
        self.nodes.len() - 1
    }

    fn knn_recurse(&self, node: usize, query: Point3, k: usize, best: &mut Vec<Neighbor>) {
        match self.nodes[node] {
            Node::Leaf { start, end } => {
                for &i in &self.order[start..end] {
                    let d2 = self.points[i].distance_squared(query);
                    if best.len() < k || d2 < best[best.len() - 1].distance_squared {
                        let n = Neighbor {
                            index: i,
                            distance_squared: d2,
                        };
                        let pos = best.partition_point(|x| (x.distance_squared, x.index) < (d2, i));
                        best.insert(pos, n);
                        if best.len() > k {
                            best.pop();
                        }
                    }
                }
            }
            Node::Split {
                axis,
                value,
                left,
                right,
            } => {
                let diff = query[axis] - value;
                let (near, far) = if diff < 0.0 {
                    (left, right)
                } else {
                    (right, left)
                };
                self.knn_recurse(near, query, k, best);
                let worst = best.last().map_or(f32::INFINITY, |n| n.distance_squared);
                if best.len() < k || diff * diff <= worst {
                    self.knn_recurse(far, query, k, best);
                }
            }
        }
    }

    fn radius_recurse(&self, node: usize, query: Point3, r2: f32, out: &mut Vec<Neighbor>) {
        match self.nodes[node] {
            Node::Leaf { start, end } => {
                for &i in &self.order[start..end] {
                    let d2 = self.points[i].distance_squared(query);
                    if d2 <= r2 {
                        out.push(Neighbor {
                            index: i,
                            distance_squared: d2,
                        });
                    }
                }
            }
            Node::Split {
                axis,
                value,
                left,
                right,
            } => {
                let diff = query[axis] - value;
                let (near, far) = if diff < 0.0 {
                    (left, right)
                } else {
                    (right, left)
                };
                self.radius_recurse(near, query, r2, out);
                if diff * diff <= r2 {
                    self.radius_recurse(far, query, r2, out);
                }
            }
        }
    }
}

impl NeighborSearch for KdTree {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn knn(&self, query: Point3, k: usize) -> Vec<Neighbor> {
        if k == 0 || self.points.is_empty() {
            return Vec::new();
        }
        let mut best = Vec::with_capacity(k + 1);
        self.knn_recurse(self.root, query, k, &mut best);
        best
    }

    fn radius(&self, query: Point3, radius: f32) -> Vec<Neighbor> {
        if self.points.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        self.radius_recurse(self.root, query, radius * radius, &mut out);
        let len = out.len();
        finalize_candidates(out, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::BruteForce;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn random_points(n: usize, seed: u64) -> Vec<Point3> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point3::new(
                    rng.random_range(-10.0..10.0),
                    rng.random_range(-10.0..10.0),
                    rng.random_range(-10.0..10.0),
                )
            })
            .collect()
    }

    #[test]
    fn agrees_with_brute_force_knn() {
        let pts = random_points(500, 1);
        let tree = KdTree::build(&pts);
        let bf = BruteForce::new(&pts);
        let queries = random_points(30, 2);
        for q in queries {
            let a = tree.knn(q, 8);
            let b = bf.knn(q, 8);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.index, y.index);
            }
        }
    }

    #[test]
    fn agrees_with_brute_force_radius() {
        let pts = random_points(300, 3);
        let tree = KdTree::build(&pts);
        let bf = BruteForce::new(&pts);
        for q in random_points(10, 4) {
            let a = tree.radius(q, 2.5);
            let b = bf.radius(q, 2.5);
            assert_eq!(
                a.iter().map(|n| n.index).collect::<Vec<_>>(),
                b.iter().map(|n| n.index).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let tree = KdTree::build(&[]);
        assert!(tree.is_empty());
        assert!(tree.knn(Point3::ZERO, 4).is_empty());
        assert!(tree.radius(Point3::ZERO, 1.0).is_empty());

        // All points identical: still returns k results.
        let pts = vec![Point3::ONE; 40];
        let tree = KdTree::build(&pts);
        let nn = tree.knn(Point3::ZERO, 5);
        assert_eq!(nn.len(), 5);
        assert!(nn.iter().all(|n| (n.distance_squared - 3.0).abs() < 1e-6));
    }

    #[test]
    fn exact_self_query() {
        let pts = random_points(200, 5);
        let tree = KdTree::build(&pts);
        for (i, &p) in pts.iter().enumerate().step_by(17) {
            let nn = tree.knn(p, 1);
            assert_eq!(nn[0].index, i);
            assert_eq!(nn[0].distance_squared, 0.0);
        }
    }
}

//! A k-d tree neighbor-search backend.
//!
//! This stands in for the cuKDTree GPU k-d tree used by the paper's CUDA
//! client: an exact, cache-friendly, array-backed k-d tree with median
//! splits. It is the default backend for the Yuzu/GradPU baselines, while
//! the VoLUT pipeline itself prefers the two-layer octree of
//! [`crate::octree`].

use crate::aabb::Aabb;
use crate::delta::{FrameDelta, REMOVED};
use crate::dualtree::{self, BatchStrategy, DualTreeScratch};
use crate::kernels;
use crate::knn::{batch_queries, finalize_candidates, BestK, Neighbor, NeighborSearch};
use crate::neighborhoods::Neighborhoods;
use crate::point::Point3;
use crate::soa::SoaPositions;

/// Maximum number of points stored in a leaf before the builder splits it.
/// Sized for the batched SoA sweep: 64 points are four 16-wide kernel
/// blocks, and the fat leaves cut two levels of node traversal and their
/// deferred far-subtree bookkeeping. With a warm-started bound plus the
/// tight leaf boxes, the batch path scans few extra candidates for that
/// saving; the cold per-query path would prefer smaller leaves, but the
/// batched sweep is the production hot path.
const LEAF_SIZE: usize = 64;

/// `Node::tag` value marking a leaf (split nodes store their axis, 0-2).
const LEAF_TAG: u32 = 3;

/// One packed tree node (16 bytes, down from a 40-byte enum): keeping the
/// node array small matters because kNN traversals chase it randomly — at
/// 100k points the packed array is ~256 KB and stays cache-resident.
///
/// Splits: `tag` = axis, `value` = plane, `a`/`b` = left/right child ids.
/// Leaves: `tag` = [`LEAF_TAG`], `a`/`b` = range into `KdTree::order`, and
/// `value` carries the leaf's ordinal in `KdTree::leaf_aabbs` (bit-cast).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Node {
    tag: u32,
    value: f32,
    a: u32,
    b: u32,
}

impl Node {
    /// `true` when this node is a leaf.
    #[inline(always)]
    pub(crate) fn is_leaf(self) -> bool {
        self.tag == LEAF_TAG
    }

    /// Child node ids of a split node.
    #[inline(always)]
    pub(crate) fn children(self) -> (u32, u32) {
        debug_assert!(!self.is_leaf());
        (self.a, self.b)
    }

    /// Slot range (`order` / SoA indices) covered by a leaf.
    #[inline(always)]
    pub(crate) fn leaf_range(self) -> (usize, usize) {
        debug_assert!(self.is_leaf());
        (self.a as usize, self.b as usize)
    }
}

/// A far subtree deferred during kNN traversal, tagged with the squared
/// distance lower bound from the query to its region and the per-axis
/// offset vector that bound was derived from (see `KdTree::knn_into`).
#[derive(Debug, Clone, Copy)]
pub struct DeferredSubtree {
    node: u32,
    bound: f32,
    off: Point3,
}

/// An array-backed k-d tree over a fixed point set.
///
/// # Example
///
/// ```
/// use volut_pointcloud::{kdtree::KdTree, knn::NeighborSearch, Point3};
/// let pts: Vec<Point3> = (0..100).map(|i| Point3::new(i as f32, 0.0, 0.0)).collect();
/// let tree = KdTree::build(&pts);
/// let nn = tree.knn(Point3::new(42.4, 0.0, 0.0), 3);
/// assert_eq!(nn[0].index, 42);
/// ```
#[derive(Debug, Clone)]
pub struct KdTree {
    points: Vec<Point3>,
    /// Permutation of point indices; leaves reference contiguous ranges.
    order: Vec<u32>,
    /// The points again, stored SoA in leaf-visit order (`soa[i]` is
    /// `points[order[i]]`): a leaf scan streams three contiguous coordinate
    /// lanes through the shared 8-wide distance kernel with no
    /// permutation-indirection on the load side — only the surviving
    /// candidates pay the `order` lookup.
    soa: SoaPositions,
    nodes: Vec<Node>,
    /// Tight bounding box of each leaf's actual points (indexed by the leaf
    /// ordinal stored in its node's `value`). Split planes only bound the
    /// *region*; the points usually occupy a much smaller box, so checking
    /// the query's distance against this box before a leaf scan skips most
    /// of the backtracking scans the region bound alone would still pay.
    leaf_aabbs: Vec<Aabb>,
    /// Tight bounding box of *every* node's points, parallel to `nodes`
    /// (internal boxes are the union of their children's). The dual-tree
    /// all-kNN traversal prunes (query-node, reference-node) pairs with
    /// box-to-box distance tests at every level, so it needs boxes for
    /// internal nodes too; the single-query paths keep using the compact
    /// `leaf_aabbs` array. ~24 bytes per node — a few tens of KB even at
    /// 100k points.
    node_aabbs: Vec<Aabb>,
    /// Reusable buffers for [`KdTree::patch`]: the order-rewrite
    /// permutation (swapped with `order` each patch), the routed-insertion
    /// pairs, the leaf list and the dirty-leaf list — so steady-state
    /// patches allocate nothing.
    scratch_order: Vec<u32>,
    scratch_routed: Vec<(u32, u32)>,
    scratch_leaves: Vec<u32>,
    scratch_dirty: Vec<u32>,
    root: usize,
}

/// The bounding box of an emptied leaf: inverted extremes, so any distance
/// test against it returns `+inf` (the leaf attracts no traversal) and a
/// union with it is the identity.
const EMPTY_LEAF_AABB: Aabb = Aabb {
    min: Point3::splat(f32::INFINITY),
    max: Point3::splat(f32::NEG_INFINITY),
};

impl Default for KdTree {
    /// An empty tree (no points indexed); [`KdTree::build_in`] turns it into
    /// a live index without fresh allocations on rebuild.
    fn default() -> Self {
        Self::build(&[])
    }
}

impl KdTree {
    /// Builds a k-d tree over the given points (copied into the tree).
    pub fn build(points: &[Point3]) -> Self {
        let mut tree = KdTree {
            points: Vec::new(),
            order: Vec::new(),
            soa: SoaPositions::default(),
            nodes: Vec::new(),
            leaf_aabbs: Vec::new(),
            node_aabbs: Vec::new(),
            scratch_order: Vec::new(),
            scratch_routed: Vec::new(),
            scratch_leaves: Vec::new(),
            scratch_dirty: Vec::new(),
            root: 0,
        };
        tree.build_in(points);
        tree
    }

    /// Rebuilds this tree over `points`, reusing the point, permutation and
    /// node storage already owned by `self`. This is the streaming-session
    /// entry point: a scratch-resident tree is rebuilt in place when the
    /// frame geometry actually changes, so steady-state frames pay no
    /// allocation for index (re)construction.
    pub fn build_in(&mut self, points: &[Point3]) {
        self.points.clear();
        self.points.extend_from_slice(points);
        self.order.clear();
        self.order.extend(0..points.len() as u32);
        self.nodes.clear();
        self.leaf_aabbs.clear();
        self.node_aabbs.clear();
        self.root = 0;
        if points.is_empty() {
            self.push_leaf(0, 0);
            self.soa.fill_permuted(points, &self.order);
            return;
        }
        let n = points.len();
        self.root = self.build_range(0, n, 0);
        // One contiguous reordered copy: leaf ranges now address three
        // streaming coordinate lanes instead of a permuted `Point3` gather.
        self.soa.fill_permuted(points, &self.order);
    }

    /// The indexed points, in their original order.
    pub fn points(&self) -> &[Point3] {
        &self.points
    }

    /// Appends a leaf node covering `order[start..end]`, recording the
    /// tight bounding box of the leaf's points.
    ///
    /// The leaf's slots are sorted by Morton code over the leaf box before
    /// being frozen: consecutive slots become spatial neighbors, which is
    /// what makes the dual-tree leaf scan's row-to-row warm-start chain
    /// tight (see `crate::dualtree`). Visit order cannot change results —
    /// survivors and ties are decided by the packed `(distance, index)`
    /// keys — and the scan kernels stream the SoA lanes the same either
    /// way.
    fn push_leaf(&mut self, start: usize, end: usize) -> usize {
        let aabb = Aabb::from_points(
            self.order[start..end]
                .iter()
                .map(|&i| self.points[i as usize]),
        )
        .unwrap_or(Aabb::new(Point3::ZERO, Point3::ZERO));
        self.sort_leaf_slots(start, end, &aabb);
        let ordinal = self.leaf_aabbs.len() as u32;
        self.leaf_aabbs.push(aabb);
        self.node_aabbs.push(aabb);
        self.nodes.push(Node {
            tag: LEAF_TAG,
            value: f32::from_bits(ordinal),
            a: start as u32,
            b: end as u32,
        });
        self.nodes.len() - 1
    }

    /// Morton-sorts the leaf slots `order[start..end]` over `aabb` so
    /// consecutive slots are spatial neighbors (the dual-tree warm-start
    /// chain relies on this; see [`Self::push_leaf`]).
    fn sort_leaf_slots(&mut self, start: usize, end: usize, aabb: &Aabb) {
        let ext = aabb.extent();
        let inv = Point3::new(
            if ext.x > 0.0 { 1024.0 / ext.x } else { 0.0 },
            if ext.y > 0.0 { 1024.0 / ext.y } else { 0.0 },
            if ext.z > 0.0 { 1024.0 / ext.z } else { 0.0 },
        );
        // Fixed-size key buffer: leaves hold at most LEAF_SIZE points.
        let mut keyed = [(0u32, 0u32); LEAF_SIZE];
        let count = end - start;
        for (slot, &i) in keyed[..count].iter_mut().zip(&self.order[start..end]) {
            *slot = (
                crate::knn::morton_code(self.points[i as usize], aabb.min, inv),
                i,
            );
        }
        keyed[..count].sort_unstable();
        for (dst, &(_, i)) in self.order[start..end].iter_mut().zip(&keyed[..count]) {
            *dst = i;
        }
    }

    #[allow(clippy::only_used_in_recursion)] // depth is the conventional k-d recursion parameter
    fn build_range(&mut self, start: usize, end: usize, depth: usize) -> usize {
        let count = end - start;
        if count <= LEAF_SIZE {
            return self.push_leaf(start, end);
        }
        // Pick the axis with the largest spread for better balance than
        // round-robin on skewed data.
        let axis = {
            let mut min = Point3::splat(f32::INFINITY);
            let mut max = Point3::splat(f32::NEG_INFINITY);
            for &i in &self.order[start..end] {
                min = min.min(self.points[i as usize]);
                max = max.max(self.points[i as usize]);
            }
            let ext = max - min;
            if ext.x >= ext.y && ext.x >= ext.z {
                0
            } else if ext.y >= ext.z {
                1
            } else {
                2
            }
        };
        let mid = start + count / 2;
        let points = &self.points;
        self.order[start..end].select_nth_unstable_by(count / 2, |&a, &b| {
            points[a as usize][axis].total_cmp(&points[b as usize][axis])
        });
        let value = self.points[self.order[mid] as usize][axis];
        let left = self.build_range(start, mid, depth + 1);
        let right = self.build_range(mid, end, depth + 1);
        // Tight internal box: the union of the children's (the children were
        // just built, so their boxes are final).
        let aabb = Aabb {
            min: self.node_aabbs[left].min.min(self.node_aabbs[right].min),
            max: self.node_aabbs[left].max.max(self.node_aabbs[right].max),
        };
        self.node_aabbs.push(aabb);
        self.nodes.push(Node {
            tag: axis as u32,
            value,
            a: left as u32,
            b: right as u32,
        });
        self.nodes.len() - 1
    }

    // --- Internals shared with the dual-tree traversal (`crate::dualtree`).

    /// The node with the given id.
    #[inline(always)]
    pub(crate) fn node(&self, id: u32) -> Node {
        self.nodes[id as usize]
    }

    /// Tight bounding box of the node with the given id.
    #[inline(always)]
    pub(crate) fn node_aabb(&self, id: u32) -> Aabb {
        self.node_aabbs[id as usize]
    }

    /// Total number of nodes (ids are `0..node_count()`).
    #[inline(always)]
    pub(crate) fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Id of the root node.
    #[inline(always)]
    pub(crate) fn root_id(&self) -> u32 {
        self.root as u32
    }

    /// Slot → original-point-index permutation (leaf ranges index into it).
    #[inline(always)]
    pub(crate) fn order(&self) -> &[u32] {
        &self.order
    }

    /// The points in leaf-visit order as SoA lanes (parallel to `order`).
    #[inline(always)]
    pub(crate) fn soa(&self) -> &SoaPositions {
        &self.soa
    }

    /// Capacity (in bytes) currently reserved by the tree's buffers — used
    /// by scratch-reuse assertions (steady-state `build_in` rebuilds over
    /// same-size clouds must not grow it).
    pub fn reserved_bytes(&self) -> usize {
        self.points.capacity() * std::mem::size_of::<Point3>()
            + (self.order.capacity()
                + self.scratch_order.capacity()
                + self.scratch_leaves.capacity()
                + self.scratch_dirty.capacity())
                * std::mem::size_of::<u32>()
            + self.scratch_routed.capacity() * std::mem::size_of::<(u32, u32)>()
            + self.nodes.capacity() * std::mem::size_of::<Node>()
            + (self.leaf_aabbs.capacity() + self.node_aabbs.capacity())
                * std::mem::size_of::<Aabb>()
            + self.soa.reserved_bytes()
    }

    /// Incrementally re-indexes this tree for a delta-frame: surviving
    /// points keep their leaves (indices renumbered through the delta's
    /// survivor map), removed points are dropped from their leaves, and
    /// inserted points are routed down the existing split planes to their
    /// home leaves. Only **dirtied** leaves pay geometry work — an exact
    /// bounding-box recompute and a Morton slot re-sort, or a local subtree
    /// rebuild when the leaf overflows `LEAF_SIZE` — followed by one
    /// bottom-up refresh of the internal node boxes. The split planes
    /// themselves are left untouched, so the patch costs
    /// `O(n)` array rewrites plus `O(churn · log n)` routing instead of the
    /// full `O(n log n)` rebuild.
    ///
    /// Query results over a patched tree are **bit-identical** to a freshly
    /// built tree: every traversal is exact for any valid k-d partition, and
    /// insertion routing uses the same comparison as query descent, so the
    /// split-plane invariant (left subtree ≤ plane ≤ right subtree) is
    /// preserved. Tree *quality* can degrade as churn accumulates (split
    /// planes go stale, boxes of churned regions stop being tight); callers
    /// should schedule a periodic [`KdTree::build_in`] — the engine's index
    /// cache rebuilds once cumulative churn crosses a fraction of the cloud.
    ///
    /// `delta` must describe exactly the change from the currently indexed
    /// points to `new_points` (see [`FrameDelta::verify`]); mismatched
    /// inputs fall back to a full rebuild when detectable by length, and are
    /// the caller's contract otherwise.
    pub fn patch(&mut self, delta: &FrameDelta, new_points: &[Point3]) {
        if self.points.len() != delta.old_len()
            || new_points.len() != delta.new_len()
            || self.points.is_empty()
            || new_points.is_empty()
        {
            self.build_in(new_points);
            return;
        }
        if delta.is_identity() {
            // Bitwise-identical geometry: the index is already exact.
            return;
        }

        // Route every inserted point down the split planes to its home
        // leaf, with the same comparison the query descent uses (so the
        // plane invariant holds for the routed points too). The traversal
        // lists live in tree-owned scratch (taken out while borrowed), so
        // steady-state patches allocate nothing.
        let mut routed = std::mem::take(&mut self.scratch_routed);
        routed.clear();
        routed.reserve(delta.inserted().len());
        for &ni in delta.inserted() {
            let p = new_points[ni as usize];
            let mut id = self.root as u32;
            loop {
                let n = self.nodes[id as usize];
                if n.is_leaf() {
                    break;
                }
                id = if p[n.tag as usize] < n.value {
                    n.a
                } else {
                    n.b
                };
            }
            routed.push((id, ni));
        }
        routed.sort_unstable();

        // The leaves tile `order`; rewrite it leaf by leaf in range order —
        // survivors renumbered (relative order, and therefore the Morton
        // slot order of clean leaves, is preserved), removed slots dropped,
        // routed insertions appended to their leaf.
        // Sized to the node table's *capacity* (leaf and dirty counts are
        // bounded by the node count), so these lists only ever grow when the
        // node table itself does — one fewer source of late capacity bumps
        // for the steady-state zero-growth assertions.
        let mut leaves = std::mem::take(&mut self.scratch_leaves);
        leaves.clear();
        leaves.reserve(self.nodes.capacity());
        leaves.extend((0..self.nodes.len() as u32).filter(|&id| self.nodes[id as usize].is_leaf()));
        leaves.sort_unstable_by_key(|&id| self.nodes[id as usize].a);
        let old_to_new = delta.old_to_new();
        self.scratch_order.clear();
        let mut dirty = std::mem::take(&mut self.scratch_dirty);
        dirty.clear();
        dirty.reserve(self.nodes.capacity());
        for &leaf_id in &leaves {
            let (s, e) = self.nodes[leaf_id as usize].leaf_range();
            let new_start = self.scratch_order.len();
            let mut leaf_dirty = false;
            for slot in s..e {
                match old_to_new[self.order[slot] as usize] {
                    REMOVED => leaf_dirty = true,
                    ni => self.scratch_order.push(ni),
                }
            }
            let lo = routed.partition_point(|&(id, _)| id < leaf_id);
            let hi = routed.partition_point(|&(id, _)| id <= leaf_id);
            for &(_, ni) in &routed[lo..hi] {
                self.scratch_order.push(ni);
                leaf_dirty = true;
            }
            self.nodes[leaf_id as usize].a = new_start as u32;
            self.nodes[leaf_id as usize].b = self.scratch_order.len() as u32;
            if leaf_dirty {
                dirty.push(leaf_id);
            }
        }
        debug_assert_eq!(self.scratch_order.len(), new_points.len());
        std::mem::swap(&mut self.order, &mut self.scratch_order);
        self.points.clear();
        self.points.extend_from_slice(new_points);

        // Geometry work only where membership changed: exact box + Morton
        // re-sort for dirty leaves, a local median-split rebuild for leaves
        // that overflowed (the rebuilt subtree's root is copied over the old
        // leaf node, so ancestors keep their child ids).
        for &leaf_id in &dirty {
            let (s, e) = self.nodes[leaf_id as usize].leaf_range();
            if e - s > LEAF_SIZE {
                let sub = self.build_range(s, e, 0);
                self.nodes[leaf_id as usize] = self.nodes[sub];
                self.node_aabbs[leaf_id as usize] = self.node_aabbs[sub];
                continue;
            }
            let ordinal = self.nodes[leaf_id as usize].value.to_bits() as usize;
            let aabb = if s == e {
                EMPTY_LEAF_AABB
            } else {
                let aabb =
                    Aabb::from_points(self.order[s..e].iter().map(|&i| self.points[i as usize]))
                        .expect("non-empty slot range");
                self.sort_leaf_slots(s, e, &aabb);
                aabb
            };
            self.leaf_aabbs[ordinal] = aabb;
            self.node_aabbs[leaf_id as usize] = aabb;
        }

        // One contiguous reordered copy, as in `build_in`.
        self.soa.fill_permuted(&self.points, &self.order);
        // Internal boxes: bottom-up union refresh over the whole (shallow)
        // node tree — a few thousand nodes even at 100k points.
        self.refresh_node_aabbs(self.root as u32);
        self.scratch_routed = routed;
        self.scratch_leaves = leaves;
        self.scratch_dirty = dirty;
    }

    /// Recomputes every internal node's box as the union of its children's
    /// (leaf boxes are exact at this point); returns the box of `id`.
    fn refresh_node_aabbs(&mut self, id: u32) -> Aabb {
        let n = self.nodes[id as usize];
        if n.is_leaf() {
            return self.node_aabbs[id as usize];
        }
        let (a, b) = n.children();
        let ba = self.refresh_node_aabbs(a);
        let bb = self.refresh_node_aabbs(b);
        let aabb = Aabb {
            min: ba.min.min(bb.min),
            max: ba.max.max(bb.max),
        };
        self.node_aabbs[id as usize] = aabb;
        aabb
    }

    /// `true` when any indexed point lies within squared distance `r2` of
    /// `query` (**inclusive** — a point at exactly `r2` counts, so callers
    /// testing kNN-ball intersection cover distance ties). Early-exits on
    /// the first hit and prunes whole subtrees by node-box distance, so a
    /// miss over a spatially compact cloud costs one root box test. The
    /// distance arithmetic is [`Point3::distance_squared`]'s — identical to
    /// the scan kernels', so the test is exact, not approximate.
    pub fn any_within(&self, query: Point3, r2: f32) -> bool {
        if self.points.is_empty() {
            return false;
        }
        self.any_within_rec(self.root as u32, query, r2)
    }

    fn any_within_rec(&self, id: u32, query: Point3, r2: f32) -> bool {
        if self.node_aabbs[id as usize].distance_squared_to(query) > r2 {
            return false;
        }
        let n = self.nodes[id as usize];
        if n.is_leaf() {
            let (s, e) = n.leaf_range();
            let (xs, ys, zs) = (self.soa.xs(), self.soa.ys(), self.soa.zs());
            for slot in s..e {
                let dx = xs[slot] - query.x;
                let dy = ys[slot] - query.y;
                let dz = zs[slot] - query.z;
                if dx * dx + dy * dy + dz * dz <= r2 {
                    return true;
                }
            }
            return false;
        }
        let (a, b) = n.children();
        // Nearer child first for earlier exits.
        let da = self.node_aabbs[a as usize].distance_squared_to(query);
        let db = self.node_aabbs[b as usize].distance_squared_to(query);
        let (first, second) = if da <= db { (a, b) } else { (b, a) };
        self.any_within_rec(first, query, r2) || self.any_within_rec(second, query, r2)
    }

    /// Allocation-free exact kNN: results land in `best` (cleared first,
    /// sorted by `(distance, index)`), `stack` is the reused traversal stack
    /// of deferred far subtrees tagged with their distance lower bound.
    ///
    /// Deferred subtrees carry the *incremental* squared distance from the
    /// query to their region (Arya & Mount): the per-axis offset vector is
    /// updated as splits accumulate, so a far subtree constrained on several
    /// axes gets the full sum of its axis penalties as a bound instead of
    /// just the last split's. The tighter bound prunes whole subtrees the
    /// single-axis formulation would still descend into; results are
    /// identical because the bound remains a true lower bound and equality
    /// still visits (distance ties are index-broken by [`push_best`]).
    ///
    /// This is the kernel behind both [`NeighborSearch::knn`] and the tuned
    /// [`NeighborSearch::knn_batch`]; one batch call reuses the same two
    /// buffers for every query, which also warm-starts each query's pruning
    /// bound from the previous one's result (see [`BestK::begin_warm`];
    /// results are unaffected, a fresh accumulator simply starts cold).
    pub(crate) fn knn_into(
        &self,
        query: Point3,
        k: usize,
        best: &mut BestK,
        stack: &mut Vec<DeferredSubtree>,
    ) {
        self.knn_into_with_path(query, k, best, stack, None);
    }

    /// [`KdTree::knn_into`] with an optional cached root-descent path: the
    /// batched sweep passes a scratch that remembers the previous query's
    /// root→leaf chain of `(node id, node)` pairs. Morton-consecutive
    /// queries share almost their entire descent, so the replay serves node
    /// data out of a small sequential buffer instead of re-chasing the node
    /// array, diverging (and refilling the tail) only where the paths
    /// split. Every visit decision is recomputed from the same node values,
    /// so results are bit-identical; `None` runs the plain descent.
    pub(crate) fn knn_into_with_path(
        &self,
        query: Point3,
        k: usize,
        best: &mut BestK,
        stack: &mut Vec<DeferredSubtree>,
        mut path: Option<&mut Vec<(u32, Node)>>,
    ) {
        // Morton-consecutive queries usually land in the same leaf as their
        // predecessor: start pulling its coordinate lanes in now, overlapped
        // with the cap computation and the descent (harmless when the leaf
        // differs — the descent just fetches the right one).
        if let Some(p) = path.as_deref() {
            if let Some(&(_, n)) = p.last() {
                if n.tag == LEAF_TAG {
                    let s = n.a as usize;
                    kernels::prefetch_read(&self.soa.xs()[s]);
                    kernels::prefetch_read(&self.soa.ys()[s]);
                    kernels::prefetch_read(&self.soa.zs()[s]);
                    kernels::prefetch_read(&self.order[s.min(self.order.len().saturating_sub(1))]);
                }
            }
        }
        best.begin_warm(k, query);
        if k == 0 || self.points.is_empty() {
            return;
        }
        stack.clear();
        // Root descent (the long chain — with path replay when available).
        let mut node = self.root as u32;
        let mut level = 0usize;
        loop {
            let n = match path.as_deref_mut() {
                Some(p) => {
                    if let Some(&(id, cached)) = p.get(level) {
                        if id == node {
                            cached
                        } else {
                            p.truncate(level);
                            let n = self.nodes[node as usize];
                            p.push((node, n));
                            n
                        }
                    } else {
                        let n = self.nodes[node as usize];
                        p.push((node, n));
                        n
                    }
                }
                None => self.nodes[node as usize],
            };
            level += 1;
            if n.tag == LEAF_TAG {
                self.scan_leaf(n, query, best);
                break;
            }
            node = self.split_step(n, query, Point3::ZERO, best, stack);
        }
        // Backtracking: process deferred far subtrees (short chains, plain
        // loads). The bound was computed when the subtree was deferred; the
        // best list has only tightened since, so this prune is at least as
        // strong as the recursive formulation's.
        while let Some(DeferredSubtree {
            node: deferred,
            bound,
            off,
        }) = stack.pop()
        {
            if bound > best.worst_d2() {
                continue;
            }
            let mut node = deferred;
            loop {
                let n = self.nodes[node as usize];
                if n.tag == LEAF_TAG {
                    self.scan_leaf(n, query, best);
                    break;
                }
                node = self.split_step(n, query, off, best, stack);
            }
        }
    }

    /// Leaf arrival: scans the leaf unless its tight bounding box is farther
    /// than the current k-th best. The box usually beats the region bound by
    /// a wide margin, so most backtracking arrivals are rejected here for
    /// the cost of one box distance instead of a full scan. Equality still
    /// scans (index-broken ties).
    #[inline(always)]
    fn scan_leaf(&self, n: Node, query: Point3, best: &mut BestK) {
        let lb = self.leaf_aabbs[n.value.to_bits() as usize];
        if lb.distance_squared_to(query) <= best.worst_d2() {
            kernels::scan_ids(
                &self.soa,
                &self.order,
                n.a as usize,
                n.b as usize,
                query,
                best,
            );
        }
    }

    /// One split-node step: defers the far child when its region could still
    /// matter and returns the near child. The near child keeps the current
    /// offsets; the far child's offset on this axis grows to |diff| (the
    /// split plane lies between the query side and it).
    #[inline(always)]
    fn split_step(
        &self,
        n: Node,
        query: Point3,
        off: Point3,
        best: &mut BestK,
        stack: &mut Vec<DeferredSubtree>,
    ) -> u32 {
        let axis = n.tag as usize;
        let diff = query[axis] - n.value;
        let (near, far) = if diff < 0.0 { (n.a, n.b) } else { (n.b, n.a) };
        let mut far_off = off;
        far_off[axis] = diff.abs();
        let far_bound = far_off.norm_squared();
        if far_bound <= best.worst_d2() {
            // Pull the deferred node in ahead of its (likely) pop.
            kernels::prefetch_read(&self.nodes[far as usize]);
            stack.push(DeferredSubtree {
                node: far,
                bound: far_bound,
                off: far_off,
            });
        }
        near
    }

    /// [`NeighborSearch::knn_batch`] with an explicit algorithm choice and a
    /// caller-owned [`DualTreeScratch`] (reused across batches, so the
    /// dual-tree path performs no steady-state allocation). This is the
    /// entry point the SR engine's `FrameScratch` routes every frame batch
    /// through; the plain trait method is equivalent to calling this with
    /// [`BatchStrategy::Auto`] and a fresh scratch.
    ///
    /// Rows are **bit-identical** across strategies (and to the per-query
    /// [`NeighborSearch::knn`] loop): both batch algorithms decide survivors
    /// and distance ties with the same packed `(distance, index)` keys.
    pub fn knn_batch_with(
        &self,
        queries: &[Point3],
        k: usize,
        out: &mut Neighborhoods,
        strategy: BatchStrategy,
        scratch: &mut DualTreeScratch,
    ) {
        let stride = k.min(self.points.len());
        out.reserve_rows(queries.len(), queries.len() * stride);
        if k == 0 || self.points.is_empty() {
            for _ in queries {
                out.push_row(std::iter::empty());
            }
            return;
        }
        if dualtree::select_dual_tree(strategy, queries, k, self) {
            dualtree::all_knn(self, queries, stride, out, scratch);
            return;
        }
        // Single-tree batch sweep: one traversal stack and one cached
        // descent path shared by the whole batch (the best list lives in
        // the driver) — zero allocations per query at steady state; large
        // batches run in Morton order for cache locality, tight warm-start
        // caps and near-total descent-path reuse.
        let mut stack: Vec<DeferredSubtree> = Vec::with_capacity(64);
        let mut path: Vec<(u32, Node)> = Vec::with_capacity(32);
        batch_queries(queries, stride, out, |q, best| {
            self.knn_into_with_path(q, k, best, &mut stack, Some(&mut path));
        });
    }

    /// Whether [`BatchStrategy::Auto`] would route this batch through the
    /// dual-tree all-kNN (a large enough self-join with small `k`; see the
    /// [`dualtree`] selection-policy docs). Exposed so
    /// callers that would otherwise pre-chunk a batch across workers — the
    /// SR engine's frame driver — can leave dual-tree batches whole: the
    /// traversal parallelizes internally by sharding the query-leaf set,
    /// and pre-chunking would both break self-join detection and fight the
    /// pool for workers.
    pub fn auto_selects_dual_tree(&self, queries: &[Point3], k: usize) -> bool {
        dualtree::select_dual_tree(BatchStrategy::Auto, queries, k, self)
    }

    fn radius_recurse(&self, node: usize, query: Point3, r2: f32, out: &mut Vec<Neighbor>) {
        let n = self.nodes[node];
        if n.tag == LEAF_TAG {
            kernels::scan_radius_ids(
                &self.soa,
                &self.order,
                n.a as usize,
                n.b as usize,
                query,
                r2,
                out,
            );
            return;
        }
        let axis = n.tag as usize;
        let diff = query[axis] - n.value;
        let (near, far) = if diff < 0.0 { (n.a, n.b) } else { (n.b, n.a) };
        self.radius_recurse(near as usize, query, r2, out);
        if diff * diff <= r2 {
            self.radius_recurse(far as usize, query, r2, out);
        }
    }
}

impl NeighborSearch for KdTree {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn knn(&self, query: Point3, k: usize) -> Vec<Neighbor> {
        if k == 0 || self.points.is_empty() {
            return Vec::new();
        }
        let mut best = BestK::default();
        let mut stack: Vec<DeferredSubtree> = Vec::new();
        self.knn_into(query, k, &mut best, &mut stack);
        best.sorted()
    }

    fn radius(&self, query: Point3, radius: f32) -> Vec<Neighbor> {
        if self.points.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        self.radius_recurse(self.root, query, radius * radius, &mut out);
        let len = out.len();
        finalize_candidates(out, len)
    }

    fn knn_batch(&self, queries: &[Point3], k: usize, out: &mut Neighborhoods) {
        // Auto-selection with a batch-local scratch: empty `Vec`s cost
        // nothing when the single-tree path is chosen, and a dual-tree
        // batch large enough to be selected amortizes the one-off scratch
        // growth over its (many thousand) queries. Callers with per-frame
        // batches should prefer [`KdTree::knn_batch_with`] and a persistent
        // scratch.
        let mut scratch = DualTreeScratch::default();
        self.knn_batch_with(queries, k, out, BatchStrategy::Auto, &mut scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::BruteForce;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn random_points(n: usize, seed: u64) -> Vec<Point3> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point3::new(
                    rng.random_range(-10.0..10.0),
                    rng.random_range(-10.0..10.0),
                    rng.random_range(-10.0..10.0),
                )
            })
            .collect()
    }

    #[test]
    fn agrees_with_brute_force_knn() {
        let pts = random_points(500, 1);
        let tree = KdTree::build(&pts);
        let bf = BruteForce::new(&pts);
        let queries = random_points(30, 2);
        for q in queries {
            let a = tree.knn(q, 8);
            let b = bf.knn(q, 8);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.index, y.index);
            }
        }
    }

    #[test]
    fn agrees_with_brute_force_radius() {
        let pts = random_points(300, 3);
        let tree = KdTree::build(&pts);
        let bf = BruteForce::new(&pts);
        for q in random_points(10, 4) {
            let a = tree.radius(q, 2.5);
            let b = bf.radius(q, 2.5);
            assert_eq!(
                a.iter().map(|n| n.index).collect::<Vec<_>>(),
                b.iter().map(|n| n.index).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let tree = KdTree::build(&[]);
        assert!(tree.is_empty());
        assert!(tree.knn(Point3::ZERO, 4).is_empty());
        assert!(tree.radius(Point3::ZERO, 1.0).is_empty());

        // All points identical: still returns k results.
        let pts = vec![Point3::ONE; 40];
        let tree = KdTree::build(&pts);
        let nn = tree.knn(Point3::ZERO, 5);
        assert_eq!(nn.len(), 5);
        assert!(nn.iter().all(|n| (n.distance_squared - 3.0).abs() < 1e-6));
    }

    #[test]
    fn build_in_reuses_storage_and_matches_fresh_build() {
        let mut tree = KdTree::default();
        assert!(tree.is_empty());
        for seed in [11, 12, 13] {
            let pts = random_points(400 + seed as usize * 37, seed);
            tree.build_in(&pts);
            let fresh = KdTree::build(&pts);
            for q in random_points(10, seed + 100) {
                let a = tree.knn(q, 6);
                let b = fresh.knn(q, 6);
                assert_eq!(
                    a.iter().map(|n| n.index).collect::<Vec<_>>(),
                    b.iter().map(|n| n.index).collect::<Vec<_>>()
                );
            }
        }
        // Shrinking back to empty leaves a valid (empty) tree.
        tree.build_in(&[]);
        assert!(tree.knn(Point3::ZERO, 3).is_empty());
    }

    #[test]
    fn knn_batch_matches_per_query_loop() {
        let pts = random_points(700, 21);
        let tree = KdTree::build(&pts);
        let queries = random_points(60, 22);
        for k in [0usize, 1, 4, 9, 1000] {
            let mut batch = crate::Neighborhoods::new();
            tree.knn_batch(&queries, k, &mut batch);
            assert_eq!(batch.len(), queries.len(), "k {k}");
            for (i, &q) in queries.iter().enumerate() {
                let expected: Vec<u32> = tree.knn(q, k).iter().map(|n| n.index as u32).collect();
                assert_eq!(batch.row(i), expected.as_slice(), "k {k} query {i}");
            }
        }
    }

    #[test]
    fn knn_batch_handles_duplicate_points_ties() {
        // Duplicate positions force exact distance ties; batched and
        // per-query paths must both resolve them by ascending index.
        let mut pts = vec![Point3::ONE; 20];
        pts.extend(random_points(100, 31));
        pts.extend(vec![Point3::ONE; 20]);
        let tree = KdTree::build(&pts);
        let nn = tree.knn(Point3::ONE, 8);
        assert_eq!(
            nn.iter().map(|n| n.index).collect::<Vec<_>>(),
            (0..8).collect::<Vec<_>>()
        );
        let mut batch = crate::Neighborhoods::new();
        tree.knn_batch(&[Point3::ONE], 8, &mut batch);
        assert_eq!(batch.row(0), (0..8u32).collect::<Vec<_>>().as_slice());
    }

    #[test]
    #[ignore = "manual timing probe"]
    fn timing_probe() {
        use std::time::Instant;
        let pts = crate::synthetic::humanoid(100_000, 0.5, 3);
        let queries = pts.positions();
        let tree = KdTree::build(queries);
        for k in [1usize, 4, 9, 16] {
            let mut best = crate::knn::BestK::default();
            let mut stack = Vec::new();
            let (visit, _) = crate::knn::morton_buckets(queries, 18);
            let t = Instant::now();
            let mut acc = 0usize;
            for &qi in &visit {
                tree.knn_into(queries[qi as usize], k, &mut best, &mut stack);
                acc += best.sorted_keys().len();
            }
            println!("k={k} morton-order sweep: {:?} acc {acc}", t.elapsed());
            let t = Instant::now();
            let mut acc = 0usize;
            for &q in queries.iter() {
                tree.knn_into(q, k, &mut best, &mut stack);
                acc += best.sorted_keys().len();
            }
            println!("k={k} random-order sweep: {:?} acc {acc}", t.elapsed());
        }
        // morton_buckets cost alone
        let t = Instant::now();
        let (visit, _) = crate::knn::morton_buckets(queries, 18);
        println!("morton_buckets: {:?} ({} visits)", t.elapsed(), visit.len());
    }

    #[test]
    #[ignore = "manual instrumentation probe"]
    fn work_count_probe() {
        let pts = crate::synthetic::humanoid(100_000, 0.5, 3);
        let queries = pts.positions();
        let tree = KdTree::build(queries);
        let k = 5;
        let (visit, _) = crate::knn::morton_buckets(queries, 18);
        let mut best = BestK::default();
        let mut stack: Vec<DeferredSubtree> = Vec::new();
        let (mut nodes, mut leaves, mut cands, mut pops, mut pushes) =
            (0u64, 0u64, 0u64, 0u64, 0u64);
        for &qi in &visit {
            let query = queries[qi as usize];
            best.begin_warm(k, query);
            stack.clear();
            stack.push(DeferredSubtree {
                node: tree.root as u32,
                bound: 0.0,
                off: Point3::ZERO,
            });
            while let Some(DeferredSubtree {
                node: deferred,
                bound,
                off,
            }) = stack.pop()
            {
                pops += 1;
                if bound > best.worst_d2() {
                    continue;
                }
                let mut node = deferred as usize;
                loop {
                    nodes += 1;
                    let n = tree.nodes[node];
                    if n.tag == LEAF_TAG {
                        let lb = tree.leaf_aabbs[n.value.to_bits() as usize];
                        if lb.distance_squared_to(query) <= best.worst_d2() {
                            leaves += 1;
                            cands += (n.b - n.a) as u64;
                            crate::kernels::scan_ids(
                                &tree.soa,
                                &tree.order,
                                n.a as usize,
                                n.b as usize,
                                query,
                                &mut best,
                            );
                        }
                        break;
                    }
                    let axis = n.tag as usize;
                    let diff = query[axis] - n.value;
                    let (near, far) = if diff < 0.0 { (n.a, n.b) } else { (n.b, n.a) };
                    let mut far_off = off;
                    far_off[axis] = diff.abs();
                    let far_bound = far_off.norm_squared();
                    if far_bound <= best.worst_d2() {
                        pushes += 1;
                        stack.push(DeferredSubtree {
                            node: far,
                            bound: far_bound,
                            off: far_off,
                        });
                    }
                    node = near as usize;
                }
            }
            let _ = best.sorted_keys();
        }
        let nq = queries.len() as u64;
        println!(
            "per query: nodes {:.1} leaves {:.1} cands {:.1} pops {:.1} pushes {:.1}",
            nodes as f64 / nq as f64,
            leaves as f64 / nq as f64,
            cands as f64 / nq as f64,
            pops as f64 / nq as f64,
            pushes as f64 / nq as f64,
        );
        // Timed warm vs cold morton sweeps through the real kernel.
        use std::time::Instant;
        // Descent-only: walk to the home leaf, no scanning or backtracking.
        let t = Instant::now();
        let mut acc = 0u32;
        for &qi in &visit {
            let query = queries[qi as usize];
            let mut node = tree.root;
            loop {
                let n = tree.nodes[node];
                if n.tag == LEAF_TAG {
                    acc ^= n.a;
                    break;
                }
                let diff = query[n.tag as usize] - n.value;
                node = if diff < 0.0 { n.a } else { n.b } as usize;
            }
        }
        println!("descent-only sweep: {:?} acc {acc}", t.elapsed());
        // Scan-only: scan each query's home leaf once (reusing acc ranges).
        let t = Instant::now();
        let mut scanned = 0u64;
        for &qi in &visit {
            let query = queries[qi as usize];
            let mut node = tree.root;
            let (a, b) = loop {
                let n = tree.nodes[node];
                if n.tag == LEAF_TAG {
                    break (n.a as usize, n.b as usize);
                }
                let diff = query[n.tag as usize] - n.value;
                node = if diff < 0.0 { n.a } else { n.b } as usize;
            };
            best.begin_warm(k, query);
            crate::kernels::scan_ids(&tree.soa, &tree.order, a, b, query, &mut best);
            scanned += best.sorted_keys().len() as u64;
        }
        println!(
            "descent+home-scan sweep: {:?} scanned {scanned}",
            t.elapsed()
        );
        // Bookkeeping-only: descent + begin_warm + sorted, no scan.
        let t = Instant::now();
        let mut scanned = 0u64;
        for &qi in &visit {
            let query = queries[qi as usize];
            let mut node = tree.root;
            loop {
                let n = tree.nodes[node];
                if n.tag == LEAF_TAG {
                    break;
                }
                let diff = query[n.tag as usize] - n.value;
                node = if diff < 0.0 { n.a } else { n.b } as usize;
            }
            best.begin_warm(k, query);
            scanned += best.sorted_keys().len() as u64;
        }
        println!(
            "descent+bookkeeping sweep: {:?} scanned {scanned}",
            t.elapsed()
        );
        // Pure BestK churn: begin_warm + k appends + a few replacements +
        // sorted, no tree at all.
        let t = Instant::now();
        let mut acc2 = 0usize;
        for &qi in &visit {
            let query = queries[qi as usize];
            best.begin_warm(k, query);
            for j in 0..8usize {
                let d = (j as f32) * 0.125 + query.x.abs() * 1e-6;
                if d <= best.worst_d2() {
                    best.push(qi as usize + j, d, query);
                }
            }
            acc2 += best.sorted_keys().len();
        }
        println!("bestk-churn sweep: {:?} acc {acc2}", t.elapsed());
        // Home-leaf scan with a *hot* leaf: same leaf range scanned for all
        // queries (isolates kernel + push cost from cache effects).
        let (ha, hb) = {
            let mut node = tree.root;
            loop {
                let n = tree.nodes[node];
                if n.tag == LEAF_TAG {
                    break (n.a as usize, n.b as usize);
                }
                node = n.a as usize;
            }
        };
        let t = Instant::now();
        let mut acc3 = 0usize;
        for &qi in &visit {
            let query = queries[qi as usize];
            best.begin_warm(k, query);
            crate::kernels::scan_ids(&tree.soa, &tree.order, ha, hb, query, &mut best);
            acc3 += best.sorted_keys().len();
        }
        println!("hot-leaf scan sweep: {:?} acc {acc3}", t.elapsed());
        for round in 0..2 {
            let t = Instant::now();
            let mut acc = 0usize;
            for &qi in &visit {
                tree.knn_into(queries[qi as usize], k, &mut best, &mut stack);
                acc += best.sorted_keys().len();
            }
            println!("round {round} warm sweep: {:?} acc {acc}", t.elapsed());
            let t = Instant::now();
            let mut acc = 0usize;
            for &qi in &visit {
                let mut cold = BestK::default();
                tree.knn_into(queries[qi as usize], k, &mut cold, &mut stack);
                acc += cold.sorted_keys().len();
            }
            println!("round {round} cold sweep: {:?} acc {acc}", t.elapsed());
        }
    }

    #[test]
    #[ignore = "manual timing probe"]
    fn batch_vs_per_query_probe() {
        use std::time::Instant;
        let pts = crate::synthetic::humanoid(100_000, 0.5, 3);
        let queries = pts.positions();
        let tree = KdTree::build(queries);
        let k = 5;
        let mut out = crate::Neighborhoods::with_capacity(queries.len(), queries.len() * k);
        for round in 0..3 {
            let t = Instant::now();
            out.clear();
            for &q in queries {
                let nn = tree.knn(q, k);
                out.push_row(nn.into_iter().map(|n| n.index));
            }
            let per_query = t.elapsed();
            let t = Instant::now();
            out.clear();
            tree.knn_batch(queries, k, &mut out);
            let batch = t.elapsed();
            println!(
                "round {round}: per_query {per_query:?} batch {batch:?} ratio {:.2}",
                per_query.as_secs_f64() / batch.as_secs_f64()
            );
        }
    }

    /// Applies a delta to a point vector the way a streaming layer would:
    /// survivors in order, insertions interleaved at their new indices.
    fn apply_delta(
        old: &[Point3],
        delta: &crate::FrameDelta,
        inserted_points: &[Point3],
    ) -> Vec<Point3> {
        let mut new = vec![Point3::ZERO; delta.new_len()];
        for (old_i, &p) in old.iter().enumerate() {
            if let Some(ni) = delta.map_old(old_i) {
                new[ni] = p;
            }
        }
        for (&ni, &p) in delta.inserted().iter().zip(inserted_points) {
            new[ni as usize] = p;
        }
        new
    }

    #[test]
    fn patched_tree_matches_fresh_build_across_churn_sequence() {
        let mut rng = StdRng::seed_from_u64(77);
        let mut pts = random_points(900, 41);
        let mut tree = KdTree::build(&pts);
        for round in 0..6 {
            // Remove a random slice of indices, insert a cluster (dense, to
            // force leaf overflows) plus some scattered points.
            let n = pts.len();
            let removed: Vec<u32> = (0..n as u32)
                .filter(|_| rng.random_range(0..10) < 2)
                .collect();
            let insert_count = rng.random_range(50..200usize);
            let center = pts[rng.random_range(0..n)];
            let inserted_pts: Vec<Point3> = (0..insert_count)
                .map(|i| {
                    if i % 3 == 0 {
                        // Tight cluster around an existing point.
                        center
                            + Point3::new(
                                rng.random_range(-0.01..0.01),
                                rng.random_range(-0.01..0.01),
                                rng.random_range(-0.01..0.01),
                            )
                    } else {
                        random_points(1, round * 1000 + i as u64)[0]
                    }
                })
                .collect();
            let new_len = n - removed.len() + insert_count;
            // Insertions appended at the tail.
            let inserted: Vec<u32> = ((new_len - insert_count) as u32..new_len as u32).collect();
            let delta = crate::FrameDelta::from_parts(n, new_len, removed, inserted).unwrap();
            let new_pts = apply_delta(&pts, &delta, &inserted_pts);
            assert!(delta.verify(&pts, &new_pts).is_ok());

            tree.patch(&delta, &new_pts);
            let fresh = KdTree::build(&new_pts);
            assert_eq!(tree.points(), fresh.points());
            // Exact parity on per-query, batch (single + dual) paths.
            for k in [1usize, 5, 70] {
                let queries = random_points(40, round * 7 + 3);
                for q in queries.iter().chain(new_pts.iter().step_by(97)) {
                    let a: Vec<usize> = tree.knn(*q, k).iter().map(|n| n.index).collect();
                    let b: Vec<usize> = fresh.knn(*q, k).iter().map(|n| n.index).collect();
                    assert_eq!(a, b, "round {round} k {k}");
                }
            }
            let mut scratch = DualTreeScratch::default();
            let mut a = crate::Neighborhoods::new();
            tree.knn_batch_with(&new_pts, 5, &mut a, BatchStrategy::DualTree, &mut scratch);
            let mut b = crate::Neighborhoods::new();
            fresh.knn_batch_with(&new_pts, 5, &mut b, BatchStrategy::DualTree, &mut scratch);
            assert_eq!(a, b, "round {round} dual-tree self-join");
            pts = new_pts;
        }
    }

    #[test]
    fn patch_handles_emptied_leaves_and_identity() {
        let pts = random_points(300, 51);
        let mut tree = KdTree::build(&pts);
        // Remove a whole spatial half: many leaves become empty.
        let removed: Vec<u32> = (0..pts.len() as u32)
            .filter(|&i| pts[i as usize].x > 0.0)
            .collect();
        let survivors = pts.len() - removed.len();
        let delta =
            crate::FrameDelta::from_parts(pts.len(), survivors, removed, Vec::new()).unwrap();
        let new_pts = apply_delta(&pts, &delta, &[]);
        tree.patch(&delta, &new_pts);
        let fresh = KdTree::build(&new_pts);
        for q in random_points(30, 52) {
            assert_eq!(
                tree.knn(q, 6).iter().map(|n| n.index).collect::<Vec<_>>(),
                fresh.knn(q, 6).iter().map(|n| n.index).collect::<Vec<_>>()
            );
        }
        // Identity patch is a no-op.
        let before = tree.clone();
        let id = crate::FrameDelta::diff(&new_pts, &new_pts);
        tree.patch(&id, &new_pts);
        assert_eq!(tree.points(), before.points());
        // Length-mismatched inputs fall back to a full rebuild.
        let shrunk = &new_pts[..new_pts.len() / 2];
        tree.patch(&id, shrunk);
        assert_eq!(tree.points(), shrunk);
        tree.patch(&crate::FrameDelta::diff(shrunk, &[]), &[]);
        assert!(tree.is_empty());
    }

    #[test]
    fn patch_with_duplicates_keeps_tie_order() {
        let mut pts = vec![Point3::ONE; 10];
        pts.extend(random_points(200, 61));
        pts.extend(vec![Point3::ONE; 10]);
        let mut tree = KdTree::build(&pts);
        // Remove a few of the duplicates and insert more duplicates at the
        // same position (appended at the tail).
        let removed = vec![0u32, 3, 212];
        let insert_count = 5usize;
        let new_len = pts.len() - removed.len() + insert_count;
        let inserted: Vec<u32> = ((new_len - insert_count) as u32..new_len as u32).collect();
        let delta = crate::FrameDelta::from_parts(pts.len(), new_len, removed, inserted).unwrap();
        let new_pts = apply_delta(&pts, &delta, &vec![Point3::ONE; insert_count]);
        tree.patch(&delta, &new_pts);
        let fresh = KdTree::build(&new_pts);
        let a: Vec<usize> = tree.knn(Point3::ONE, 12).iter().map(|n| n.index).collect();
        let b: Vec<usize> = fresh.knn(Point3::ONE, 12).iter().map(|n| n.index).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn any_within_agrees_with_brute_force() {
        let pts = random_points(400, 71);
        let tree = KdTree::build(&pts);
        let bf = BruteForce::new(&pts);
        for (qi, q) in random_points(60, 72).into_iter().enumerate() {
            // Exercise exact-boundary radii: the squared distance of a real
            // neighbor must count as "within" (inclusive test).
            let nn = bf.knn(q, 3);
            for n in &nn {
                assert!(
                    tree.any_within(q, n.distance_squared),
                    "query {qi}: tie at the boundary must count"
                );
            }
            let r2 = nn[0].distance_squared;
            if r2 > 0.0 {
                // Strictly inside the nearest neighbor: nothing is within.
                assert!(!tree.any_within(q, r2 * 0.99));
            }
        }
        assert!(!KdTree::build(&[]).any_within(Point3::ZERO, 1e30));
    }

    #[test]
    fn exact_self_query() {
        let pts = random_points(200, 5);
        let tree = KdTree::build(&pts);
        for (i, &p) in pts.iter().enumerate().step_by(17) {
            let nn = tree.knn(p, 1);
            assert_eq!(nn[0].index, i);
            assert_eq!(nn[0].distance_squared, 0.0);
        }
    }
}

//! A k-d tree neighbor-search backend.
//!
//! This stands in for the cuKDTree GPU k-d tree used by the paper's CUDA
//! client: an exact, cache-friendly, array-backed k-d tree with median
//! splits. It is the default backend for the Yuzu/GradPU baselines, while
//! the VoLUT pipeline itself prefers the two-layer octree of
//! [`crate::octree`].

use crate::knn::{batch_queries, finalize_candidates, BestK, Neighbor, NeighborSearch};
use crate::neighborhoods::Neighborhoods;
use crate::point::Point3;

/// Maximum number of points stored in a leaf before the builder splits it.
const LEAF_SIZE: usize = 16;

/// `Node::tag` value marking a leaf (split nodes store their axis, 0-2).
const LEAF_TAG: u32 = 3;

/// One packed tree node (16 bytes, down from a 40-byte enum): keeping the
/// node array small matters because kNN traversals chase it randomly — at
/// 100k points the packed array is ~256 KB and stays cache-resident.
///
/// Splits: `tag` = axis, `value` = plane, `a`/`b` = left/right child ids.
/// Leaves: `tag` = [`LEAF_TAG`], `a`/`b` = range into `KdTree::order`.
#[derive(Debug, Clone, Copy)]
struct Node {
    tag: u32,
    value: f32,
    a: u32,
    b: u32,
}

/// A far subtree deferred during kNN traversal, tagged with the squared
/// distance lower bound from the query to its region and the per-axis
/// offset vector that bound was derived from (see [`KdTree::knn_into`]).
#[derive(Debug, Clone, Copy)]
pub struct DeferredSubtree {
    node: u32,
    bound: f32,
    off: Point3,
}

/// An array-backed k-d tree over a fixed point set.
///
/// # Example
///
/// ```
/// use volut_pointcloud::{kdtree::KdTree, knn::NeighborSearch, Point3};
/// let pts: Vec<Point3> = (0..100).map(|i| Point3::new(i as f32, 0.0, 0.0)).collect();
/// let tree = KdTree::build(&pts);
/// let nn = tree.knn(Point3::new(42.4, 0.0, 0.0), 3);
/// assert_eq!(nn[0].index, 42);
/// ```
#[derive(Debug, Clone)]
pub struct KdTree {
    points: Vec<Point3>,
    /// Permutation of point indices; leaves reference contiguous ranges.
    /// `u32` keeps a 16-point leaf inside a single cache line.
    order: Vec<u32>,
    nodes: Vec<Node>,
    root: usize,
}

impl Default for KdTree {
    /// An empty tree (no points indexed); [`KdTree::build_in`] turns it into
    /// a live index without fresh allocations on rebuild.
    fn default() -> Self {
        Self::build(&[])
    }
}

impl KdTree {
    /// Builds a k-d tree over the given points (copied into the tree).
    pub fn build(points: &[Point3]) -> Self {
        let mut tree = KdTree {
            points: Vec::new(),
            order: Vec::new(),
            nodes: Vec::new(),
            root: 0,
        };
        tree.build_in(points);
        tree
    }

    /// Rebuilds this tree over `points`, reusing the point, permutation and
    /// node storage already owned by `self`. This is the streaming-session
    /// entry point: a scratch-resident tree is rebuilt in place when the
    /// frame geometry actually changes, so steady-state frames pay no
    /// allocation for index (re)construction.
    pub fn build_in(&mut self, points: &[Point3]) {
        self.points.clear();
        self.points.extend_from_slice(points);
        self.order.clear();
        self.order.extend(0..points.len() as u32);
        self.nodes.clear();
        self.root = 0;
        if points.is_empty() {
            self.push_leaf(0, 0);
            return;
        }
        let n = points.len();
        self.root = self.build_range(0, n, 0);
    }

    /// The indexed points, in their original order.
    pub fn points(&self) -> &[Point3] {
        &self.points
    }

    /// Appends a leaf node covering `order[start..end]`.
    fn push_leaf(&mut self, start: usize, end: usize) -> usize {
        self.nodes.push(Node {
            tag: LEAF_TAG,
            value: 0.0,
            a: start as u32,
            b: end as u32,
        });
        self.nodes.len() - 1
    }

    #[allow(clippy::only_used_in_recursion)] // depth is the conventional k-d recursion parameter
    fn build_range(&mut self, start: usize, end: usize, depth: usize) -> usize {
        let count = end - start;
        if count <= LEAF_SIZE {
            return self.push_leaf(start, end);
        }
        // Pick the axis with the largest spread for better balance than
        // round-robin on skewed data.
        let axis = {
            let mut min = Point3::splat(f32::INFINITY);
            let mut max = Point3::splat(f32::NEG_INFINITY);
            for &i in &self.order[start..end] {
                min = min.min(self.points[i as usize]);
                max = max.max(self.points[i as usize]);
            }
            let ext = max - min;
            if ext.x >= ext.y && ext.x >= ext.z {
                0
            } else if ext.y >= ext.z {
                1
            } else {
                2
            }
        };
        let mid = start + count / 2;
        let points = &self.points;
        self.order[start..end].select_nth_unstable_by(count / 2, |&a, &b| {
            points[a as usize][axis].total_cmp(&points[b as usize][axis])
        });
        let value = self.points[self.order[mid] as usize][axis];
        let left = self.build_range(start, mid, depth + 1);
        let right = self.build_range(mid, end, depth + 1);
        self.nodes.push(Node {
            tag: axis as u32,
            value,
            a: left as u32,
            b: right as u32,
        });
        self.nodes.len() - 1
    }

    /// Allocation-free exact kNN: results land in `best` (cleared first,
    /// sorted by `(distance, index)`), `stack` is the reused traversal stack
    /// of deferred far subtrees tagged with their distance lower bound.
    ///
    /// Deferred subtrees carry the *incremental* squared distance from the
    /// query to their region (Arya & Mount): the per-axis offset vector is
    /// updated as splits accumulate, so a far subtree constrained on several
    /// axes gets the full sum of its axis penalties as a bound instead of
    /// just the last split's. The tighter bound prunes whole subtrees the
    /// single-axis formulation would still descend into; results are
    /// identical because the bound remains a true lower bound and equality
    /// still visits (distance ties are index-broken by [`push_best`]).
    ///
    /// This is the kernel behind both [`NeighborSearch::knn`] and the tuned
    /// [`NeighborSearch::knn_batch`]; one batch call reuses the same two
    /// buffers for every query.
    pub(crate) fn knn_into(
        &self,
        query: Point3,
        k: usize,
        best: &mut BestK,
        stack: &mut Vec<DeferredSubtree>,
    ) {
        best.begin(k);
        if k == 0 || self.points.is_empty() {
            return;
        }
        stack.clear();
        stack.push(DeferredSubtree {
            node: self.root as u32,
            bound: 0.0,
            off: Point3::ZERO,
        });
        while let Some(DeferredSubtree {
            node: deferred,
            bound,
            off,
        }) = stack.pop()
        {
            // The bound was computed when the subtree was deferred; the best
            // list has only tightened since, so this prune is at least as
            // strong as the recursive formulation's.
            if bound > best.worst_d2() {
                continue;
            }
            let mut node = deferred as usize;
            loop {
                let n = self.nodes[node];
                if n.tag == LEAF_TAG {
                    for &i in &self.order[n.a as usize..n.b as usize] {
                        let d2 = self.points[i as usize].distance_squared(query);
                        best.push(i as usize, d2);
                    }
                    break;
                }
                let axis = n.tag as usize;
                let diff = query[axis] - n.value;
                let (near, far) = if diff < 0.0 { (n.a, n.b) } else { (n.b, n.a) };
                // The near child keeps the current offsets; the far child's
                // offset on this axis grows to |diff| (the split plane lies
                // between the query side and it).
                let mut far_off = off;
                far_off[axis] = diff.abs();
                let far_bound = far_off.norm_squared();
                if far_bound <= best.worst_d2() {
                    stack.push(DeferredSubtree {
                        node: far,
                        bound: far_bound,
                        off: far_off,
                    });
                }
                node = near as usize;
            }
        }
    }

    fn radius_recurse(&self, node: usize, query: Point3, r2: f32, out: &mut Vec<Neighbor>) {
        let n = self.nodes[node];
        if n.tag == LEAF_TAG {
            for &i in &self.order[n.a as usize..n.b as usize] {
                let d2 = self.points[i as usize].distance_squared(query);
                if d2 <= r2 {
                    out.push(Neighbor {
                        index: i as usize,
                        distance_squared: d2,
                    });
                }
            }
            return;
        }
        let axis = n.tag as usize;
        let diff = query[axis] - n.value;
        let (near, far) = if diff < 0.0 { (n.a, n.b) } else { (n.b, n.a) };
        self.radius_recurse(near as usize, query, r2, out);
        if diff * diff <= r2 {
            self.radius_recurse(far as usize, query, r2, out);
        }
    }
}

impl NeighborSearch for KdTree {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn knn(&self, query: Point3, k: usize) -> Vec<Neighbor> {
        if k == 0 || self.points.is_empty() {
            return Vec::new();
        }
        let mut best = BestK::default();
        let mut stack: Vec<DeferredSubtree> = Vec::new();
        self.knn_into(query, k, &mut best, &mut stack);
        best.sorted().to_vec()
    }

    fn radius(&self, query: Point3, radius: f32) -> Vec<Neighbor> {
        if self.points.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        self.radius_recurse(self.root, query, radius * radius, &mut out);
        let len = out.len();
        finalize_candidates(out, len)
    }

    fn knn_batch(&self, queries: &[Point3], k: usize, out: &mut Neighborhoods) {
        let stride = k.min(self.points.len());
        out.reserve_rows(queries.len(), queries.len() * stride);
        if k == 0 || self.points.is_empty() {
            for _ in queries {
                out.push_row(std::iter::empty());
            }
            return;
        }
        // One traversal stack shared by the whole batch (the best list lives
        // in the driver) — zero allocations per query at steady state; large
        // batches run in Morton order for cache locality.
        let mut stack: Vec<DeferredSubtree> = Vec::with_capacity(64);
        batch_queries(queries, stride, out, |q, best| {
            self.knn_into(q, k, best, &mut stack);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::BruteForce;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn random_points(n: usize, seed: u64) -> Vec<Point3> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point3::new(
                    rng.random_range(-10.0..10.0),
                    rng.random_range(-10.0..10.0),
                    rng.random_range(-10.0..10.0),
                )
            })
            .collect()
    }

    #[test]
    fn agrees_with_brute_force_knn() {
        let pts = random_points(500, 1);
        let tree = KdTree::build(&pts);
        let bf = BruteForce::new(&pts);
        let queries = random_points(30, 2);
        for q in queries {
            let a = tree.knn(q, 8);
            let b = bf.knn(q, 8);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.index, y.index);
            }
        }
    }

    #[test]
    fn agrees_with_brute_force_radius() {
        let pts = random_points(300, 3);
        let tree = KdTree::build(&pts);
        let bf = BruteForce::new(&pts);
        for q in random_points(10, 4) {
            let a = tree.radius(q, 2.5);
            let b = bf.radius(q, 2.5);
            assert_eq!(
                a.iter().map(|n| n.index).collect::<Vec<_>>(),
                b.iter().map(|n| n.index).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let tree = KdTree::build(&[]);
        assert!(tree.is_empty());
        assert!(tree.knn(Point3::ZERO, 4).is_empty());
        assert!(tree.radius(Point3::ZERO, 1.0).is_empty());

        // All points identical: still returns k results.
        let pts = vec![Point3::ONE; 40];
        let tree = KdTree::build(&pts);
        let nn = tree.knn(Point3::ZERO, 5);
        assert_eq!(nn.len(), 5);
        assert!(nn.iter().all(|n| (n.distance_squared - 3.0).abs() < 1e-6));
    }

    #[test]
    fn build_in_reuses_storage_and_matches_fresh_build() {
        let mut tree = KdTree::default();
        assert!(tree.is_empty());
        for seed in [11, 12, 13] {
            let pts = random_points(400 + seed as usize * 37, seed);
            tree.build_in(&pts);
            let fresh = KdTree::build(&pts);
            for q in random_points(10, seed + 100) {
                let a = tree.knn(q, 6);
                let b = fresh.knn(q, 6);
                assert_eq!(
                    a.iter().map(|n| n.index).collect::<Vec<_>>(),
                    b.iter().map(|n| n.index).collect::<Vec<_>>()
                );
            }
        }
        // Shrinking back to empty leaves a valid (empty) tree.
        tree.build_in(&[]);
        assert!(tree.knn(Point3::ZERO, 3).is_empty());
    }

    #[test]
    fn knn_batch_matches_per_query_loop() {
        let pts = random_points(700, 21);
        let tree = KdTree::build(&pts);
        let queries = random_points(60, 22);
        for k in [0usize, 1, 4, 9, 1000] {
            let mut batch = crate::Neighborhoods::new();
            tree.knn_batch(&queries, k, &mut batch);
            assert_eq!(batch.len(), queries.len(), "k {k}");
            for (i, &q) in queries.iter().enumerate() {
                let expected: Vec<u32> = tree.knn(q, k).iter().map(|n| n.index as u32).collect();
                assert_eq!(batch.row(i), expected.as_slice(), "k {k} query {i}");
            }
        }
    }

    #[test]
    fn knn_batch_handles_duplicate_points_ties() {
        // Duplicate positions force exact distance ties; batched and
        // per-query paths must both resolve them by ascending index.
        let mut pts = vec![Point3::ONE; 20];
        pts.extend(random_points(100, 31));
        pts.extend(vec![Point3::ONE; 20]);
        let tree = KdTree::build(&pts);
        let nn = tree.knn(Point3::ONE, 8);
        assert_eq!(
            nn.iter().map(|n| n.index).collect::<Vec<_>>(),
            (0..8).collect::<Vec<_>>()
        );
        let mut batch = crate::Neighborhoods::new();
        tree.knn_batch(&[Point3::ONE], 8, &mut batch);
        assert_eq!(batch.row(0), (0..8u32).collect::<Vec<_>>().as_slice());
    }

    #[test]
    #[ignore = "manual timing probe"]
    fn timing_probe() {
        use std::time::Instant;
        let pts = crate::synthetic::humanoid(100_000, 0.5, 3);
        let queries = pts.positions();
        let tree = KdTree::build(queries);
        for k in [1usize, 4, 9, 16] {
            let mut best = crate::knn::BestK::default();
            let mut stack = Vec::new();
            let (visit, _) = crate::knn::morton_buckets(queries, 15);
            let t = Instant::now();
            let mut acc = 0usize;
            for &qi in &visit {
                tree.knn_into(queries[qi as usize], k, &mut best, &mut stack);
                acc += best.sorted().len();
            }
            println!("k={k} morton-order sweep: {:?} acc {acc}", t.elapsed());
            let t = Instant::now();
            let mut acc = 0usize;
            for &q in queries.iter() {
                tree.knn_into(q, k, &mut best, &mut stack);
                acc += best.sorted().len();
            }
            println!("k={k} random-order sweep: {:?} acc {acc}", t.elapsed());
        }
        // morton_buckets cost alone
        let t = Instant::now();
        let (visit, _) = crate::knn::morton_buckets(queries, 15);
        println!("morton_buckets: {:?} ({} visits)", t.elapsed(), visit.len());
    }

    #[test]
    fn exact_self_query() {
        let pts = random_points(200, 5);
        let tree = KdTree::build(&pts);
        for (i, &p) in pts.iter().enumerate().step_by(17) {
            let nn = tree.knn(p, 1);
            assert_eq!(nn[0].index, i);
            assert_eq!(nn[0].distance_squared, 0.0);
        }
    }
}

//! Serialization of point clouds: a compact binary `.vpc` format (the wire
//! format charged by the streaming simulator) and ASCII PLY import/export
//! for interoperability with external viewers.

use crate::cloud::PointCloud;
use crate::error::Error;
use crate::point::{Color, Point3};
use crate::Result;
use bytes::{Buf, Bytes, BytesMut};
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes identifying the binary `.vpc` format.
const MAGIC: &[u8; 4] = b"VPC1";

/// Encodes a cloud into the compact binary `.vpc` representation:
/// `magic | flags(u8) | count(u64 LE) | positions (12B each) | colors (3B each)`.
///
/// This is also the byte layout assumed by [`PointCloud::byte_size`] plus a
/// 13-byte header.
pub fn encode(cloud: &PointCloud) -> Bytes {
    let mut buf = BytesMut::with_capacity(13 + cloud.byte_size());
    buf.put_slice(MAGIC);
    buf.put_u8(u8::from(cloud.has_colors()));
    buf.put_u64_le(cloud.len() as u64);
    for p in cloud.positions() {
        buf.put_f32_le(p.x);
        buf.put_f32_le(p.y);
        buf.put_f32_le(p.z);
    }
    if let Some(colors) = cloud.colors() {
        for c in colors {
            buf.put_u8(c.r);
            buf.put_u8(c.g);
            buf.put_u8(c.b);
        }
    }
    buf.freeze()
}

/// Decodes a cloud from the binary `.vpc` representation produced by [`encode`].
///
/// # Errors
/// Returns [`Error::Format`] when the buffer is truncated or the magic bytes
/// do not match.
pub fn decode(mut data: &[u8]) -> Result<PointCloud> {
    if data.len() < 13 {
        return Err(Error::Format("buffer shorter than header".into()));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(Error::Format(format!("bad magic bytes {magic:?}")));
    }
    let has_colors = data.get_u8() != 0;
    let count = data.get_u64_le() as usize;
    let need = count * 12 + if has_colors { count * 3 } else { 0 };
    if data.remaining() < need {
        return Err(Error::Format(format!(
            "expected {need} payload bytes, found {}",
            data.remaining()
        )));
    }
    let mut positions = Vec::with_capacity(count);
    for _ in 0..count {
        let x = data.get_f32_le();
        let y = data.get_f32_le();
        let z = data.get_f32_le();
        positions.push(Point3::new(x, y, z));
    }
    if has_colors {
        let mut colors = Vec::with_capacity(count);
        for _ in 0..count {
            colors.push(Color::new(data.get_u8(), data.get_u8(), data.get_u8()));
        }
        PointCloud::from_positions_and_colors(positions, colors)
    } else {
        Ok(PointCloud::from_positions(positions))
    }
}

/// Writes a cloud to `path` in the binary `.vpc` format.
///
/// # Errors
/// Propagates any underlying I/O error.
pub fn write_vpc<P: AsRef<Path>>(cloud: &PointCloud, path: P) -> Result<()> {
    let mut file = BufWriter::new(File::create(path)?);
    file.write_all(&encode(cloud))?;
    file.flush()?;
    Ok(())
}

/// Reads a cloud from a binary `.vpc` file.
///
/// # Errors
/// Returns an I/O error when the file cannot be read or a format error when
/// the contents are not valid `.vpc` data.
pub fn read_vpc<P: AsRef<Path>>(path: P) -> Result<PointCloud> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    decode(&data)
}

/// Writes a cloud as ASCII PLY (positions + optional `uchar` RGB).
///
/// # Errors
/// Propagates any underlying I/O error.
pub fn write_ply<W: Write>(cloud: &PointCloud, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "ply")?;
    writeln!(w, "format ascii 1.0")?;
    writeln!(w, "element vertex {}", cloud.len())?;
    writeln!(w, "property float x")?;
    writeln!(w, "property float y")?;
    writeln!(w, "property float z")?;
    if cloud.has_colors() {
        writeln!(w, "property uchar red")?;
        writeln!(w, "property uchar green")?;
        writeln!(w, "property uchar blue")?;
    }
    writeln!(w, "end_header")?;
    for (p, c) in cloud.iter() {
        match c {
            Some(c) if cloud.has_colors() => {
                writeln!(w, "{} {} {} {} {} {}", p.x, p.y, p.z, c.r, c.g, c.b)?
            }
            _ => writeln!(w, "{} {} {}", p.x, p.y, p.z)?,
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads an ASCII PLY point cloud (positions and optional `uchar` RGB).
///
/// Only the subset of PLY emitted by [`write_ply`] is supported: ASCII
/// format, a single `vertex` element, float x/y/z followed by optional
/// uchar red/green/blue.
///
/// # Errors
/// Returns [`Error::Format`] for unsupported or malformed input.
pub fn read_ply<R: Read>(reader: R) -> Result<PointCloud> {
    let reader = BufReader::new(reader);
    let mut lines = reader.lines();
    let header_line = |l: Option<std::io::Result<String>>| -> Result<String> {
        l.ok_or_else(|| Error::Format("unexpected end of header".into()))?
            .map_err(Error::from)
    };
    if header_line(lines.next())?.trim() != "ply" {
        return Err(Error::Format("missing ply magic line".into()));
    }
    let mut vertex_count: Option<usize> = None;
    let mut has_colors = false;
    loop {
        let line = header_line(lines.next())?;
        let line = line.trim().to_string();
        if line == "end_header" {
            break;
        }
        if let Some(rest) = line.strip_prefix("element vertex ") {
            vertex_count = Some(
                rest.trim()
                    .parse()
                    .map_err(|_| Error::Format(format!("bad vertex count: {rest}")))?,
            );
        }
        if line.starts_with("property uchar red") {
            has_colors = true;
        }
        if line.starts_with("format") && !line.contains("ascii") {
            return Err(Error::Format("only ascii ply is supported".into()));
        }
    }
    let count = vertex_count.ok_or_else(|| Error::Format("missing element vertex".into()))?;
    let mut positions = Vec::with_capacity(count);
    let mut colors = if has_colors {
        Some(Vec::with_capacity(count))
    } else {
        None
    };
    for _ in 0..count {
        let line = header_line(lines.next())?;
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 3 {
            return Err(Error::Format(format!("vertex line too short: {line}")));
        }
        let parse_f = |s: &str| -> Result<f32> {
            s.parse()
                .map_err(|_| Error::Format(format!("bad float: {s}")))
        };
        positions.push(Point3::new(
            parse_f(fields[0])?,
            parse_f(fields[1])?,
            parse_f(fields[2])?,
        ));
        if let Some(colors) = &mut colors {
            if fields.len() < 6 {
                return Err(Error::Format(format!("missing color fields: {line}")));
            }
            let parse_u = |s: &str| -> Result<u8> {
                s.parse()
                    .map_err(|_| Error::Format(format!("bad color byte: {s}")))
            };
            colors.push(Color::new(
                parse_u(fields[3])?,
                parse_u(fields[4])?,
                parse_u(fields[5])?,
            ));
        }
    }
    match colors {
        Some(c) => PointCloud::from_positions_and_colors(positions, c),
        None => Ok(PointCloud::from_positions(positions)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic;

    #[test]
    fn binary_roundtrip_with_colors() {
        let cloud = synthetic::sphere(321, 1.0, 1);
        let bytes = encode(&cloud);
        assert_eq!(bytes.len(), 13 + cloud.byte_size());
        let back = decode(&bytes).unwrap();
        assert_eq!(cloud, back);
    }

    #[test]
    fn binary_roundtrip_without_colors() {
        let cloud = PointCloud::from_positions(synthetic::sphere(100, 1.0, 2).positions().to_vec());
        let back = decode(&encode(&cloud)).unwrap();
        assert_eq!(cloud, back);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(b"nope").is_err());
        assert!(decode(b"XXXX0\0\0\0\0\0\0\0\0").is_err());
        // Truncated payload.
        let cloud = synthetic::sphere(10, 1.0, 3);
        let bytes = encode(&cloud);
        assert!(decode(&bytes[..bytes.len() - 5]).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let cloud = synthetic::torus(200, 1.0, 0.3, 4);
        let dir = std::env::temp_dir().join("volut_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cloud.vpc");
        write_vpc(&cloud, &path).unwrap();
        let back = read_vpc(&path).unwrap();
        assert_eq!(cloud, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ply_roundtrip_with_colors() {
        let cloud = synthetic::sphere(50, 1.0, 5);
        let mut buf = Vec::new();
        write_ply(&cloud, &mut buf).unwrap();
        let back = read_ply(&buf[..]).unwrap();
        assert_eq!(cloud.len(), back.len());
        assert!(back.has_colors());
        // Positions survive the text roundtrip to float precision.
        for (a, b) in cloud.positions().iter().zip(back.positions()) {
            assert!(a.distance(*b) < 1e-4);
        }
        assert_eq!(cloud.colors().unwrap()[7], back.colors().unwrap()[7]);
    }

    #[test]
    fn ply_roundtrip_without_colors() {
        let cloud = PointCloud::from_positions(vec![Point3::new(1.5, -2.25, 3.125)]);
        let mut buf = Vec::new();
        write_ply(&cloud, &mut buf).unwrap();
        let back = read_ply(&buf[..]).unwrap();
        assert!(!back.has_colors());
        assert_eq!(back.position(0), Point3::new(1.5, -2.25, 3.125));
    }

    #[test]
    fn ply_rejects_malformed_input() {
        assert!(read_ply(&b"not a ply"[..]).is_err());
        assert!(read_ply(&b"ply\nformat binary_little_endian 1.0\nend_header\n"[..]).is_err());
        assert!(read_ply(&b"ply\nformat ascii 1.0\nend_header\n"[..]).is_err());
        let missing_vertex = b"ply\nformat ascii 1.0\nelement vertex 2\nproperty float x\nproperty float y\nproperty float z\nend_header\n0 0 0\n";
        assert!(read_ply(&missing_vertex[..]).is_err());
    }
}

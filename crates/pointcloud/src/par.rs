//! Data-parallel helpers, now thin adapters over [`crate::runtime`].
//!
//! Historically these helpers fanned chunks out over `std::thread::scope`,
//! spawning one OS thread *per chunk* — a 1000-chunk job oversubscribed the
//! machine a thousandfold. They now submit recursively-splittable range
//! tasks to the work-stealing pool: the number of concurrent executors is
//! bounded by the pool size regardless of chunk count, idle workers steal
//! from busy ones, and repeated parallel stages reuse pooled threads instead
//! of paying spawn/join per call.
//!
//! The chunk-shaped API is unchanged, so call sites keep their exact output
//! layout (and therefore bit-identical results — every caller writes
//! disjoint slots whose values depend only on the slot index). The worker
//! count is resolved by the runtime: a [`crate::runtime::with_workers`]
//! scope if one is active on this thread, else the global pool sized from
//! `VOLUT_WORKERS` / [`std::thread::available_parallelism`].
//!
//! With the `parallel` feature disabled (it is on by default) every helper
//! degrades to its sequential equivalent, which keeps the engine
//! single-threaded for deterministic profiling and for targets where
//! spawning threads is undesirable.

/// Raw-pointer wrapper that lets range tasks write disjoint slots of one
/// buffer from multiple workers. Safety rests on the callers: every index is
/// written by exactly one task.
#[cfg(feature = "parallel")]
#[derive(Clone, Copy)]
pub(crate) struct SendPtr<T>(*mut T);

#[cfg(feature = "parallel")]
impl<T> SendPtr<T> {
    /// Wraps a base pointer whose disjoint-slot discipline the caller
    /// guarantees.
    #[inline]
    pub(crate) fn new(ptr: *mut T) -> Self {
        Self(ptr)
    }

    /// Accessor (rather than direct field use) so closures capture the
    /// `Send + Sync` wrapper, not the raw pointer field (2021 edition
    /// closures capture disjoint fields).
    #[inline]
    pub(crate) fn get(&self) -> *mut T {
        self.0
    }
}

#[cfg(feature = "parallel")]
unsafe impl<T: Send> Send for SendPtr<T> {}
#[cfg(feature = "parallel")]
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Upper bound on concurrent workers for a workload of `items` elements.
///
/// Running a full pool for a few thousand points costs more than it saves,
/// so the count scales with the workload and is capped by the current
/// pool's executor count ([`crate::runtime::current_workers`], which honors
/// `VOLUT_WORKERS` and scoped [`crate::runtime::with_workers`] overrides —
/// never a hard-coded guess).
pub fn worker_count(items: usize, min_items_per_worker: usize) -> usize {
    #[cfg(feature = "parallel")]
    {
        crate::runtime::current_workers()
            .min(items / min_items_per_worker.max(1) + 1)
            .max(1)
    }
    #[cfg(not(feature = "parallel"))]
    {
        let _ = (items, min_items_per_worker);
        1
    }
}

/// Runs `f(chunk_index, start, chunk)` over contiguous mutable chunks of
/// `data`, in parallel when the `parallel` feature is enabled. `start` is
/// the element offset of the chunk inside `data`. At most pool-size chunks
/// execute concurrently, however many chunks the job has.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, usize, &mut [T]) + Sync,
{
    let chunk_len = chunk_len.max(1);
    #[cfg(feature = "parallel")]
    {
        let chunks = data.len().div_ceil(chunk_len);
        if chunks > 1 && crate::runtime::current_workers() > 1 {
            let len = data.len();
            let base = SendPtr(data.as_mut_ptr());
            crate::runtime::run_range(chunks, 1, |r| {
                for c in r.clone() {
                    let start = c * chunk_len;
                    let end = (start + chunk_len).min(len);
                    // SAFETY: chunk index ranges from the runtime are
                    // disjoint and each chunk spans distinct elements, so no
                    // two tasks alias; `data` outlives the blocking
                    // `run_range` call.
                    let chunk = unsafe {
                        std::slice::from_raw_parts_mut(base.get().add(start), end - start)
                    };
                    f(c, start, chunk);
                }
            });
            return;
        }
    }
    for (c, chunk) in data.chunks_mut(chunk_len).enumerate() {
        f(c, c * chunk_len, chunk);
    }
}

/// Maps `f(chunk_index, range)` over contiguous sub-ranges of `0..len` and
/// returns the per-chunk outputs in chunk order. The workhorse for
/// fork/join-style stages that produce per-worker partial results.
pub fn map_chunks<R, F>(len: usize, chunk_len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, std::ops::Range<usize>) -> R + Sync,
{
    let chunk_len = chunk_len.max(1);
    let chunks = len.div_ceil(chunk_len).max(1);
    let chunk_range = |c: usize| (c * chunk_len).min(len)..((c + 1) * chunk_len).min(len);
    #[cfg(feature = "parallel")]
    {
        if chunks > 1 && crate::runtime::current_workers() > 1 {
            let mut slots: Vec<Option<R>> = (0..chunks).map(|_| None).collect();
            let base = SendPtr(slots.as_mut_ptr());
            crate::runtime::run_range(chunks, 1, |r| {
                for c in r {
                    // SAFETY: each slot index is written by exactly one
                    // task (ranges are disjoint); `slots` outlives the
                    // blocking `run_range` call.
                    unsafe { *base.get().add(c) = Some(f(c, chunk_range(c))) };
                }
            });
            return slots
                .into_iter()
                .map(|s| s.expect("worker completed"))
                .collect();
        }
    }
    (0..chunks).map(|c| f(c, chunk_range(c))).collect()
}

/// Fills `out[i] = f(i)` for every element, split across the pool with
/// roughly `min_items_per_worker` elements per task.
pub fn fill_with<T, F>(out: &mut [T], min_items_per_worker: usize, f: F)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    #[cfg(not(feature = "parallel"))]
    let _ = min_items_per_worker;
    #[cfg(feature = "parallel")]
    {
        if out.len() > min_items_per_worker.max(1) && crate::runtime::current_workers() > 1 {
            let base = SendPtr(out.as_mut_ptr());
            crate::runtime::run_range(out.len(), min_items_per_worker.max(1), |r| {
                for i in r {
                    // SAFETY: element ranges from the runtime are disjoint
                    // and `out` outlives the blocking `run_range` call.
                    unsafe { *base.get().add(i) = f(i) };
                }
            });
            return;
        }
    }
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = f(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_count_scales_with_items() {
        assert_eq!(worker_count(0, 1000), 1);
        assert!(worker_count(1_000_000, 1000) >= 1);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn worker_count_is_capped_by_scoped_pool() {
        crate::runtime::with_workers(2, || {
            assert_eq!(worker_count(1_000_000, 1000), 2);
        });
        crate::runtime::with_workers(8, || {
            assert_eq!(worker_count(1_000_000, 1000), 8);
            // Still scales down with the workload.
            assert_eq!(worker_count(3000, 1000), 4);
        });
    }

    #[test]
    fn for_each_chunk_mut_touches_every_element() {
        let mut data = vec![0usize; 1003];
        for_each_chunk_mut(&mut data, 100, |_, start, chunk| {
            for (offset, v) in chunk.iter_mut().enumerate() {
                *v = start + offset;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i));
    }

    #[test]
    fn map_chunks_covers_range_in_order() {
        let out = map_chunks(250, 64, |c, range| (c, range.clone()));
        assert_eq!(out.len(), 4);
        assert_eq!(out[0].1, 0..64);
        assert_eq!(out[3].1, 192..250);
        assert!(out.iter().enumerate().all(|(i, (c, _))| *c == i));
        // Degenerate: empty input still yields one (empty) chunk.
        let empty = map_chunks(0, 64, |_, range| range.len());
        assert_eq!(empty, vec![0]);
    }

    #[test]
    fn fill_with_computes_every_slot() {
        let mut data = vec![0u64; 4097];
        fill_with(&mut data, 256, |i| (i as u64) * 3);
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64 * 3));
    }

    /// The oversubscription regression: the old scoped-thread helpers
    /// spawned one OS thread per chunk, so a 1000-chunk job ran 1000
    /// threads. Routed through the pool, peak concurrency must never exceed
    /// the pool size no matter how many chunks the job is cut into.
    #[cfg(feature = "parallel")]
    #[test]
    fn thousand_chunk_job_never_exceeds_pool_size() {
        use std::sync::atomic::{AtomicIsize, Ordering::SeqCst};
        // Private pool, not the shared `with_workers` cache: a concurrent
        // test waiting on that cached pool participates via work stealing
        // and would be a legal extra executor, breaking the bound under test.
        let workers = 4;
        let live = AtomicIsize::new(0);
        let peak = AtomicIsize::new(0);
        let mut data = vec![0u8; 1000];
        let pool = crate::runtime::Pool::new(workers);
        pool.install(|| {
            for_each_chunk_mut(&mut data, 1, |_, _, chunk| {
                let now = live.fetch_add(1, SeqCst) + 1;
                peak.fetch_max(now, SeqCst);
                std::thread::sleep(std::time::Duration::from_micros(20));
                chunk[0] = 1;
                live.fetch_sub(1, SeqCst);
            });
        });
        assert!(data.iter().all(|&b| b == 1), "every chunk ran");
        assert!(
            peak.load(SeqCst) <= workers as isize,
            "peak concurrency {} exceeded pool size {workers}",
            peak.load(SeqCst)
        );
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn map_chunks_concurrency_is_bounded_by_pool() {
        use std::sync::atomic::{AtomicIsize, Ordering::SeqCst};
        // Private pool for the same reason as the test above.
        let workers = 3;
        let live = AtomicIsize::new(0);
        let peak = AtomicIsize::new(0);
        let pool = crate::runtime::Pool::new(workers);
        let sums = pool.install(|| {
            map_chunks(1000, 1, |c, range| {
                let now = live.fetch_add(1, SeqCst) + 1;
                peak.fetch_max(now, SeqCst);
                std::thread::sleep(std::time::Duration::from_micros(20));
                live.fetch_sub(1, SeqCst);
                c + range.len()
            })
        });
        assert_eq!(sums.len(), 1000);
        assert!(sums.iter().enumerate().all(|(i, &s)| s == i + 1));
        assert!(peak.load(SeqCst) <= workers as isize);
    }
}

//! Minimal data-parallel helpers (the stand-in for `rayon`).
//!
//! The build environment has no access to crates.io, so instead of rayon's
//! work-stealing pool these helpers fan chunks out over `std::thread::scope`
//! workers. They are deliberately tiny: every parallel site in the SR engine
//! is a flat loop over independent elements, which scoped threads over
//! contiguous chunks handle within a few percent of a real pool.
//!
//! With the `parallel` feature disabled (it is on by default) every helper
//! degrades to its sequential equivalent, which keeps the engine
//! single-threaded for deterministic profiling and for targets where
//! spawning threads is undesirable.

/// Upper bound on worker threads for a workload of `items` elements.
///
/// Spawning a full complement of threads for a few thousand points costs
/// more than it saves, so the count scales with the workload and is capped
/// by the machine's available parallelism.
pub fn worker_count(items: usize, min_items_per_worker: usize) -> usize {
    #[cfg(feature = "parallel")]
    {
        let available = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        available
            .min(items / min_items_per_worker.max(1) + 1)
            .max(1)
    }
    #[cfg(not(feature = "parallel"))]
    {
        let _ = (items, min_items_per_worker);
        1
    }
}

/// Runs `f(chunk_index, start, chunk)` over contiguous mutable chunks of
/// `data`, in parallel when the `parallel` feature is enabled. `start` is
/// the element offset of the chunk inside `data`.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, usize, &mut [T]) + Sync,
{
    let chunk_len = chunk_len.max(1);
    #[cfg(feature = "parallel")]
    {
        if data.len() > chunk_len {
            std::thread::scope(|scope| {
                for (c, chunk) in data.chunks_mut(chunk_len).enumerate() {
                    let f = &f;
                    scope.spawn(move || f(c, c * chunk_len, chunk));
                }
            });
            return;
        }
    }
    for (c, chunk) in data.chunks_mut(chunk_len).enumerate() {
        f(c, c * chunk_len, chunk);
    }
}

/// Maps `f(chunk_index, range)` over contiguous sub-ranges of `0..len` and
/// returns the per-chunk outputs in chunk order. The workhorse for
/// fork/join-style stages that produce per-worker partial results.
pub fn map_chunks<R, F>(len: usize, chunk_len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, std::ops::Range<usize>) -> R + Sync,
{
    let chunk_len = chunk_len.max(1);
    let chunks = len.div_ceil(chunk_len).max(1);
    let ranges = (0..chunks).map(|c| (c * chunk_len).min(len)..((c + 1) * chunk_len).min(len));
    #[cfg(feature = "parallel")]
    {
        if chunks > 1 {
            let mut slots: Vec<Option<R>> = (0..chunks).map(|_| None).collect();
            std::thread::scope(|scope| {
                for (slot, range) in slots.iter_mut().zip(ranges) {
                    let f = &f;
                    let c = range.start / chunk_len;
                    scope.spawn(move || *slot = Some(f(c, range)));
                }
            });
            return slots
                .into_iter()
                .map(|s| s.expect("worker completed"))
                .collect();
        }
    }
    ranges.enumerate().map(|(c, range)| f(c, range)).collect()
}

/// Fills `out[i] = f(i)` for every element, chunked across workers.
pub fn fill_with<T, F>(out: &mut [T], min_items_per_worker: usize, f: F)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = worker_count(out.len(), min_items_per_worker);
    let chunk = out.len().div_ceil(workers).max(1);
    for_each_chunk_mut(out, chunk, |_, start, slice| {
        for (offset, slot) in slice.iter_mut().enumerate() {
            *slot = f(start + offset);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_count_scales_with_items() {
        assert_eq!(worker_count(0, 1000), 1);
        assert!(worker_count(1_000_000, 1000) >= 1);
    }

    #[test]
    fn for_each_chunk_mut_touches_every_element() {
        let mut data = vec![0usize; 1003];
        for_each_chunk_mut(&mut data, 100, |_, start, chunk| {
            for (offset, v) in chunk.iter_mut().enumerate() {
                *v = start + offset;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i));
    }

    #[test]
    fn map_chunks_covers_range_in_order() {
        let out = map_chunks(250, 64, |c, range| (c, range.clone()));
        assert_eq!(out.len(), 4);
        assert_eq!(out[0].1, 0..64);
        assert_eq!(out[3].1, 192..250);
        assert!(out.iter().enumerate().all(|(i, (c, _))| *c == i));
        // Degenerate: empty input still yields one (empty) chunk.
        let empty = map_chunks(0, 64, |_, range| range.len());
        assert_eq!(empty, vec![0]);
    }

    #[test]
    fn fill_with_computes_every_slot() {
        let mut data = vec![0u64; 4097];
        fill_with(&mut data, 256, |i| (i as u64) * 3);
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64 * 3));
    }
}

//! The two-layer octree used by VoLUT's hierarchical kNN (paper §4.1).
//!
//! The paper's insight is that a *shallow* hierarchy — eight major regions,
//! each subdivided into eight sub-regions (64 leaf cells total) — balances
//! spatial pruning against traversal overhead, and that leaf cells tend to be
//! self-contained for neighbor queries. This module implements exactly that
//! structure plus an optional "self-contained leaf" fast path used by the
//! dilated-interpolation stage.

use crate::aabb::Aabb;
use crate::kernels;
use crate::knn::{batch_queries, finalize_candidates, BestK, Neighbor, NeighborSearch};
use crate::neighborhoods::Neighborhoods;
use crate::point::Point3;
use crate::soa::SoaPositions;

/// Number of top-level regions per axis split (2 => 8 octants).
const TOP_CHILDREN: usize = 8;
/// Total leaf cells: 8 regions × 8 sub-regions.
const LEAF_CELLS: usize = TOP_CHILDREN * 8;

/// Two-layer octree over a fixed point set.
///
/// Leaf cells store point indices; queries visit cells in order of their
/// distance lower bound to the query point and prune cells that cannot
/// contain a closer neighbor than the current k-th best.
///
/// # Example
///
/// ```
/// use volut_pointcloud::{octree::TwoLayerOctree, knn::NeighborSearch, Point3};
/// let pts: Vec<Point3> = (0..1000)
///     .map(|i| Point3::new((i % 10) as f32, ((i / 10) % 10) as f32, (i / 100) as f32))
///     .collect();
/// let oct = TwoLayerOctree::build(&pts);
/// let nn = oct.knn(Point3::new(5.1, 5.1, 5.1), 4);
/// assert_eq!(nn.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct TwoLayerOctree {
    points: Vec<Point3>,
    bounds: Aabb,
    /// Top-level octant bounds, cached so queries do not recompute them.
    top_bounds: [Aabb; 8],
    /// Leaf cell bounding boxes (64 of them once built on a non-empty cloud).
    cell_bounds: Vec<Aabb>,
    /// Per-cell slab ranges: cell `c` owns `ids[cell_starts[c]..cell_starts
    /// [c + 1]]` ([`LEAF_CELLS`] + 1 entries, one trailing sentinel).
    cell_starts: Vec<u32>,
    /// Slab position → original point index, grouped by cell.
    ids: Vec<u32>,
    /// Positions in slab order: each leaf cell is a contiguous SoA run
    /// scanned with the shared 8-wide distance kernel.
    soa: SoaPositions,
    /// Leaf cell id for each point.
    point_cell: Vec<usize>,
}

impl Default for TwoLayerOctree {
    /// An empty octree; [`TwoLayerOctree::build_in`] turns it into a live
    /// index without fresh allocations on rebuild.
    fn default() -> Self {
        Self::build(&[])
    }
}

impl TwoLayerOctree {
    /// Builds the two-layer octree over the given points (copied).
    pub fn build(points: &[Point3]) -> Self {
        let mut oct = Self {
            points: Vec::new(),
            bounds: Aabb::new(Point3::ZERO, Point3::ONE),
            top_bounds: [Aabb::new(Point3::ZERO, Point3::ONE); 8],
            cell_bounds: Vec::new(),
            cell_starts: Vec::new(),
            ids: Vec::new(),
            soa: SoaPositions::default(),
            point_cell: Vec::new(),
        };
        oct.build_in(points);
        oct
    }

    /// Rebuilds this octree over `points`, reusing the point storage and the
    /// 64 per-cell index lists already owned by `self`.
    pub fn build_in(&mut self, points: &[Point3]) {
        let bounds = Aabb::from_points(points.iter().copied())
            .unwrap_or(Aabb::new(Point3::ZERO, Point3::ONE))
            // A tiny inflation avoids points sitting exactly on the max face
            // falling outside every cell due to floating-point rounding.
            .inflated(1e-4);
        let top = bounds.octants();
        self.cell_bounds.clear();
        self.cell_bounds.reserve(LEAF_CELLS);
        for region in &top {
            for sub in region.octants() {
                self.cell_bounds.push(sub);
            }
        }
        // Counting-sort the points into per-cell SoA slabs (64 cells): count,
        // prefix-sum, scatter in point order so each slab keeps ascending
        // original indices.
        self.point_cell.clear();
        self.point_cell.resize(points.len(), 0);
        let mut counts = [0u32; LEAF_CELLS];
        for (i, &p) in points.iter().enumerate() {
            let region = bounds.octant_of(p);
            let sub = top[region].octant_of(p);
            let cell = region * 8 + sub;
            counts[cell] += 1;
            self.point_cell[i] = cell;
        }
        self.cell_starts.clear();
        self.cell_starts.push(0);
        let mut acc = 0u32;
        for &c in &counts {
            acc += c;
            self.cell_starts.push(acc);
        }
        let mut cursor: [u32; LEAF_CELLS] = self.cell_starts[..LEAF_CELLS]
            .try_into()
            .expect("cell_starts holds LEAF_CELLS + 1 entries");
        self.ids.clear();
        self.ids.resize(points.len(), 0);
        for (i, &cell) in self.point_cell.iter().enumerate() {
            let pos = &mut cursor[cell];
            self.ids[*pos as usize] = i as u32;
            *pos += 1;
        }
        self.soa.fill_permuted(points, &self.ids);
        self.points.clear();
        self.points.extend_from_slice(points);
        self.bounds = bounds;
        self.top_bounds = top;
    }

    /// The indexed points.
    pub fn points(&self) -> &[Point3] {
        &self.points
    }

    /// The overall bounding box of the indexed points.
    pub fn bounds(&self) -> Aabb {
        self.bounds
    }

    /// Id of the leaf cell containing point `i`.
    ///
    /// # Panics
    /// Panics when `i` is out of bounds.
    pub fn cell_of(&self, i: usize) -> usize {
        self.point_cell[i]
    }

    /// Number of points stored in leaf cell `cell`.
    pub fn cell_len(&self, cell: usize) -> usize {
        if cell + 1 < self.cell_starts.len() {
            (self.cell_starts[cell + 1] - self.cell_starts[cell]) as usize
        } else {
            0
        }
    }

    /// Slab range of leaf cell `cell` in `ids`/`soa`.
    #[inline]
    fn cell_range(&self, cell: usize) -> (usize, usize) {
        (
            self.cell_starts[cell] as usize,
            self.cell_starts[cell + 1] as usize,
        )
    }

    /// Returns the k nearest neighbors of `query` looking only inside the
    /// leaf cell that contains `query`. This is the paper's "self-contained
    /// leaf" fast path: when the cell holds at least `k` points whose k-th
    /// distance is smaller than the distance from `query` to the cell
    /// boundary, the result is exact; otherwise the caller should fall back
    /// to [`NeighborSearch::knn`]. The second tuple element reports whether
    /// the result is guaranteed exact.
    pub fn knn_within_cell(&self, query: Point3, k: usize) -> (Vec<Neighbor>, bool) {
        if self.points.is_empty() || k == 0 {
            return (Vec::new(), true);
        }
        let region = self.bounds.octant_of(query);
        let cell = region * 8 + self.top_bounds[region].octant_of(query);
        // A sparse leaf cannot answer the query exactly anyway; skip straight
        // to the caller's fallback instead of doing the work twice.
        if self.cell_len(cell) < k {
            return (Vec::new(), false);
        }
        let (start, end) = self.cell_range(cell);
        let mut best = BestK::default();
        best.begin(k);
        kernels::scan_ids(&self.soa, &self.ids, start, end, query, &mut best);
        let result = best.sorted();
        let exact = if result.len() < k {
            false
        } else {
            // Distance from query to the cell boundary: if the k-th neighbor
            // is closer than the boundary, no outside point can beat it.
            let cb = &self.cell_bounds[cell];
            let to_boundary = [
                query.x - cb.min.x,
                cb.max.x - query.x,
                query.y - cb.min.y,
                cb.max.y - query.y,
                query.z - cb.min.z,
                cb.max.z - query.z,
            ]
            .into_iter()
            .fold(f32::INFINITY, f32::min)
            .max(0.0);
            result[result.len() - 1].distance_squared <= to_boundary * to_boundary
        };
        (result, exact)
    }

    /// Allocation-free exact kNN: results land in `best` (cleared first,
    /// sorted by `(distance, index)`); `order` is the reused cell-visitation
    /// scratch (cells sorted by their distance lower bound to the query).
    /// One batch call shares both buffers across all its queries, which also
    /// warm-starts each query's pruning bound from the previous one's result
    /// (see [`BestK::begin_warm`]; results are unaffected, a fresh
    /// accumulator simply starts cold).
    pub(crate) fn knn_into(
        &self,
        query: Point3,
        k: usize,
        best: &mut BestK,
        order: &mut Vec<(f32, usize)>,
    ) {
        best.begin_warm(k, query);
        if k == 0 || self.points.is_empty() {
            return;
        }
        // Visit cells in order of their lower-bound distance to the query.
        order.clear();
        order.extend(
            self.cell_bounds
                .iter()
                .enumerate()
                .filter(|(c, _)| self.cell_len(*c) > 0)
                .map(|(c, b)| (b.distance_squared_to(query), c)),
        );
        order.sort_by(|a, b| a.0.total_cmp(&b.0));
        for &(lower_bound, cell) in order.iter() {
            if lower_bound > best.worst_d2() {
                break;
            }
            let (start, end) = self.cell_range(cell);
            kernels::scan_ids(&self.soa, &self.ids, start, end, query, best);
        }
    }
}

impl NeighborSearch for TwoLayerOctree {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn knn(&self, query: Point3, k: usize) -> Vec<Neighbor> {
        let mut best = BestK::default();
        let mut order = Vec::new();
        self.knn_into(query, k, &mut best, &mut order);
        best.sorted()
    }

    fn radius(&self, query: Point3, radius: f32) -> Vec<Neighbor> {
        if self.points.is_empty() {
            return Vec::new();
        }
        let r2 = radius * radius;
        let mut out = Vec::new();
        for (cell, b) in self.cell_bounds.iter().enumerate() {
            if self.cell_len(cell) == 0 || b.distance_squared_to(query) > r2 {
                continue;
            }
            let (start, end) = self.cell_range(cell);
            kernels::scan_radius_ids(&self.soa, &self.ids, start, end, query, r2, &mut out);
        }
        let len = out.len();
        finalize_candidates(out, len)
    }

    fn knn_batch(&self, queries: &[Point3], k: usize, out: &mut Neighborhoods) {
        let stride = k.min(self.points.len());
        out.reserve_rows(queries.len(), queries.len() * stride);
        if k == 0 || self.points.is_empty() {
            for _ in queries {
                out.push_row(std::iter::empty());
            }
            return;
        }
        // Morton order groups queries by leaf cell, so each cell's point
        // list is scanned while still cache-hot from the previous query.
        let mut order: Vec<(f32, usize)> = Vec::with_capacity(LEAF_CELLS);
        batch_queries(queries, stride, out, |q, best| {
            self.knn_into(q, k, best, &mut order);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::BruteForce;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn random_points(n: usize, seed: u64) -> Vec<Point3> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point3::new(
                    rng.random_range(-5.0..5.0),
                    rng.random_range(-5.0..5.0),
                    rng.random_range(-5.0..5.0),
                )
            })
            .collect()
    }

    #[test]
    fn has_64_cells_and_assigns_every_point() {
        let pts = random_points(2000, 7);
        let oct = TwoLayerOctree::build(&pts);
        assert_eq!(oct.cell_bounds.len(), 64);
        let total: usize = (0..64).map(|c| oct.cell_len(c)).sum();
        assert_eq!(total, pts.len());
        for i in (0..pts.len()).step_by(97) {
            let cell = oct.cell_of(i);
            assert!(oct.cell_bounds[cell].contains(pts[i]));
        }
    }

    #[test]
    fn agrees_with_brute_force() {
        let pts = random_points(800, 11);
        let oct = TwoLayerOctree::build(&pts);
        let bf = BruteForce::new(&pts);
        for q in random_points(25, 13) {
            let a = oct.knn(q, 6);
            let b = bf.knn(q, 6);
            assert_eq!(
                a.iter().map(|n| n.index).collect::<Vec<_>>(),
                b.iter().map(|n| n.index).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn radius_agrees_with_brute_force() {
        let pts = random_points(500, 17);
        let oct = TwoLayerOctree::build(&pts);
        let bf = BruteForce::new(&pts);
        for q in random_points(10, 19) {
            let a = oct.radius(q, 1.5);
            let b = bf.radius(q, 1.5);
            assert_eq!(
                a.iter().map(|n| n.index).collect::<Vec<_>>(),
                b.iter().map(|n| n.index).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn empty_cloud_is_fine() {
        let oct = TwoLayerOctree::build(&[]);
        assert!(oct.is_empty());
        assert!(oct.knn(Point3::ZERO, 3).is_empty());
        assert!(oct.radius(Point3::ZERO, 1.0).is_empty());
        let (nn, exact) = oct.knn_within_cell(Point3::ZERO, 3);
        assert!(nn.is_empty());
        assert!(exact);
    }

    #[test]
    fn knn_batch_matches_per_query_loop() {
        let pts = random_points(600, 41);
        let oct = TwoLayerOctree::build(&pts);
        let queries = random_points(40, 43);
        for k in [0usize, 1, 6, 700] {
            let mut batch = crate::Neighborhoods::new();
            oct.knn_batch(&queries, k, &mut batch);
            for (i, &q) in queries.iter().enumerate() {
                let expected: Vec<u32> = oct.knn(q, k).iter().map(|n| n.index as u32).collect();
                assert_eq!(batch.row(i), expected.as_slice(), "k {k} query {i}");
            }
        }
    }

    #[test]
    fn build_in_matches_fresh_build() {
        let mut oct = TwoLayerOctree::default();
        assert!(oct.is_empty());
        for seed in [51, 52] {
            let pts = random_points(800, seed);
            oct.build_in(&pts);
            let fresh = TwoLayerOctree::build(&pts);
            assert_eq!(oct.bounds(), fresh.bounds());
            for q in random_points(15, seed + 9) {
                assert_eq!(
                    oct.knn(q, 5).iter().map(|n| n.index).collect::<Vec<_>>(),
                    fresh.knn(q, 5).iter().map(|n| n.index).collect::<Vec<_>>(),
                );
            }
        }
    }

    #[test]
    fn within_cell_exactness_flag_is_sound() {
        let pts = random_points(3000, 23);
        let oct = TwoLayerOctree::build(&pts);
        let bf = BruteForce::new(&pts);
        let mut exact_checked = 0;
        for &q in pts.iter().step_by(53) {
            let (fast, exact) = oct.knn_within_cell(q, 4);
            if exact {
                exact_checked += 1;
                let truth = bf.knn(q, 4);
                assert_eq!(
                    fast.iter().map(|n| n.index).collect::<Vec<_>>(),
                    truth.iter().map(|n| n.index).collect::<Vec<_>>()
                );
            }
        }
        // With 3000 points most interior queries should take the fast path.
        assert!(exact_checked > 0);
    }
}

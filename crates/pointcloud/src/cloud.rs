//! The [`PointCloud`] container: a structure-of-arrays point set with
//! optional per-point colors.

use crate::aabb::Aabb;
use crate::error::Error;
use crate::point::{Color, Point3};
use crate::Result;
use serde::{Deserialize, Serialize};

/// A point cloud stored as a structure of arrays.
///
/// Positions are mandatory; colors are optional but, when present, must have
/// exactly one entry per position. This is the unit of data that flows
/// through the entire VoLUT pipeline: the server downsamples a `PointCloud`,
/// the client interpolates and refines one.
///
/// # Example
///
/// ```
/// use volut_pointcloud::{PointCloud, Point3, Color};
///
/// let mut cloud = PointCloud::new();
/// cloud.push(Point3::new(0.0, 0.0, 0.0), Some(Color::new(255, 0, 0)));
/// cloud.push(Point3::new(1.0, 0.0, 0.0), Some(Color::new(0, 255, 0)));
/// assert_eq!(cloud.len(), 2);
/// assert!(cloud.has_colors());
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PointCloud {
    positions: Vec<Point3>,
    colors: Option<Vec<Color>>,
    /// Memoized [`geometry_digest`] of `positions`; reset by every mutating
    /// accessor so a stale digest can never be observed. Skipped by serde
    /// (recomputed on demand after deserialization) and ignored by equality.
    #[serde(skip)]
    digest: std::sync::OnceLock<u64>,
}

impl PartialEq for PointCloud {
    fn eq(&self, other: &Self) -> bool {
        self.positions == other.positions && self.colors == other.colors
    }
}

/// 64-bit multiply-rotate digest of a position array's bit patterns.
///
/// One streaming pass, a few instructions per point — cheaper than the
/// element-wise slice compare it short-circuits in the index cache, and
/// sensitive to order, length and every coordinate bit (`-0.0` differs from
/// `+0.0`, matching [`crate::delta::FrameDelta::diff`]'s bitwise notion of
/// "same stored point"). Not cryptographic; collisions are guarded by a full
/// compare wherever a false "equal" would change results.
pub fn geometry_digest(points: &[Point3]) -> u64 {
    let mut h = 0x9E37_79B9_7F4A_7C15u64 ^ (points.len() as u64);
    for p in points {
        let xy = (u64::from(p.x.to_bits()) << 32) | u64::from(p.y.to_bits());
        h = (h.rotate_left(25) ^ xy).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h = (h.rotate_left(25) ^ u64::from(p.z.to_bits())).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    }
    h ^ (h >> 31)
}

impl PointCloud {
    /// Creates an empty cloud without colors.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cloud with capacity reserved for `n` points.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            positions: Vec::with_capacity(n),
            colors: None,
            digest: std::sync::OnceLock::new(),
        }
    }

    /// Creates a cloud from positions only.
    pub fn from_positions(positions: Vec<Point3>) -> Self {
        Self {
            positions,
            colors: None,
            digest: std::sync::OnceLock::new(),
        }
    }

    /// Creates a cloud from positions and matching colors.
    ///
    /// # Errors
    /// Returns [`Error::AttributeMismatch`] when the two vectors differ in length.
    pub fn from_positions_and_colors(positions: Vec<Point3>, colors: Vec<Color>) -> Result<Self> {
        if positions.len() != colors.len() {
            return Err(Error::AttributeMismatch {
                positions: positions.len(),
                attributes: colors.len(),
            });
        }
        Ok(Self {
            positions,
            colors: Some(colors),
            digest: std::sync::OnceLock::new(),
        })
    }

    /// Number of points in the cloud.
    #[inline]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Returns `true` when the cloud has no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Returns `true` when the cloud carries per-point colors.
    #[inline]
    pub fn has_colors(&self) -> bool {
        self.colors.is_some()
    }

    /// Borrow of the position array.
    #[inline]
    pub fn positions(&self) -> &[Point3] {
        &self.positions
    }

    /// Mutable borrow of the position array. Invalidates the memoized
    /// geometry digest (the caller may change any coordinate).
    #[inline]
    pub fn positions_mut(&mut self) -> &mut [Point3] {
        self.digest = std::sync::OnceLock::new();
        &mut self.positions
    }

    /// Borrow of the color array, if present.
    #[inline]
    pub fn colors(&self) -> Option<&[Color]> {
        self.colors.as_deref()
    }

    /// Removes and returns the color array, leaving the cloud uncolored.
    /// Paired with [`Self::set_colors`] so per-frame stages can mutate the
    /// color storage in place instead of rebuilding the cloud.
    pub fn take_colors(&mut self) -> Option<Vec<Color>> {
        self.colors.take()
    }

    /// Installs a complete color array.
    ///
    /// # Errors
    /// Returns [`Error::AttributeMismatch`] when the length differs from the
    /// point count.
    pub fn set_colors(&mut self, colors: Vec<Color>) -> Result<()> {
        if colors.len() != self.positions.len() {
            return Err(Error::AttributeMismatch {
                positions: self.positions.len(),
                attributes: colors.len(),
            });
        }
        self.colors = Some(colors);
        Ok(())
    }

    /// Position of point `i`.
    ///
    /// # Panics
    /// Panics when `i` is out of bounds.
    #[inline]
    pub fn position(&self, i: usize) -> Point3 {
        self.positions[i]
    }

    /// Color of point `i`, if the cloud has colors.
    #[inline]
    pub fn color(&self, i: usize) -> Option<Color> {
        self.colors.as_ref().map(|c| c[i])
    }

    /// Appends a point. The first push decides whether the cloud is colored;
    /// later pushes must be consistent (a colored cloud rejects `None` by
    /// substituting black, an uncolored cloud ignores a provided color).
    pub fn push(&mut self, position: Point3, color: Option<Color>) {
        self.digest = std::sync::OnceLock::new();
        if self.positions.is_empty() {
            if let Some(c) = color {
                self.colors = Some(vec![c]);
                self.positions.push(position);
                return;
            }
        }
        self.positions.push(position);
        if let Some(colors) = &mut self.colors {
            colors.push(color.unwrap_or(Color::BLACK));
        }
    }

    /// Bulk tail append of positions without colors — the batched equivalent
    /// of repeated `push(p, None)`. A colored cloud pads the new points with
    /// black (exactly as `push` would); the memoized geometry digest is
    /// invalidated once for the whole batch.
    pub fn extend_positions(&mut self, positions: &[Point3]) {
        if positions.is_empty() {
            return;
        }
        self.digest = std::sync::OnceLock::new();
        self.positions.extend_from_slice(positions);
        if let Some(colors) = &mut self.colors {
            colors.extend(std::iter::repeat_n(Color::BLACK, positions.len()));
        }
    }

    /// Iterator over `(position, optional color)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Point3, Option<Color>)> + '_ {
        self.positions
            .iter()
            .enumerate()
            .map(move |(i, &p)| (p, self.colors.as_ref().map(|c| c[i])))
    }

    /// Extracts the subset of points at `indices`, preserving colors.
    ///
    /// # Panics
    /// Panics when an index is out of bounds.
    pub fn select(&self, indices: &[usize]) -> PointCloud {
        let positions = indices.iter().map(|&i| self.positions[i]).collect();
        let colors = self
            .colors
            .as_ref()
            .map(|c| indices.iter().map(|&i| c[i]).collect());
        PointCloud {
            positions,
            colors,
            digest: std::sync::OnceLock::new(),
        }
    }

    /// Appends all points of `other` to `self`. If exactly one of the clouds
    /// is colored, missing colors are filled with black so the result stays
    /// consistent.
    pub fn merge(&mut self, other: &PointCloud) {
        self.digest = std::sync::OnceLock::new();
        match (&mut self.colors, &other.colors) {
            (Some(mine), Some(theirs)) => mine.extend_from_slice(theirs),
            (Some(mine), None) => mine.extend(std::iter::repeat_n(Color::BLACK, other.len())),
            (None, Some(theirs)) => {
                let mut c = vec![Color::BLACK; self.len()];
                c.extend_from_slice(theirs);
                self.colors = Some(c);
            }
            (None, None) => {}
        }
        self.positions.extend_from_slice(&other.positions);
    }

    /// Bounding box of the cloud, or `None` when empty.
    pub fn bounds(&self) -> Option<Aabb> {
        Aabb::from_points(self.positions.iter().copied())
    }

    /// Centroid of the cloud, or `None` when empty.
    pub fn centroid(&self) -> Option<Point3> {
        if self.is_empty() {
            return None;
        }
        let sum = self.positions.iter().fold(Point3::ZERO, |acc, &p| acc + p);
        Some(sum / self.len() as f32)
    }

    /// Translates every point by `offset`.
    pub fn translate(&mut self, offset: Point3) {
        self.digest = std::sync::OnceLock::new();
        for p in &mut self.positions {
            *p += offset;
        }
    }

    /// Uniformly scales every point about the origin.
    pub fn scale(&mut self, factor: f32) {
        self.digest = std::sync::OnceLock::new();
        for p in &mut self.positions {
            *p = *p * factor;
        }
    }

    /// Normalizes the cloud into the unit cube `[-1, 1]^3` centered at the
    /// origin, returning the applied `(center, scale)` so the transform can be
    /// inverted. Returns an error for empty clouds.
    ///
    /// # Errors
    /// Returns [`Error::EmptyCloud`] when the cloud has no points.
    pub fn normalize_unit_cube(&mut self) -> Result<(Point3, f32)> {
        let bounds = self
            .bounds()
            .ok_or_else(|| Error::EmptyCloud("normalize_unit_cube".into()))?;
        self.digest = std::sync::OnceLock::new();
        let center = bounds.center();
        let half = bounds.longest_edge() * 0.5;
        let scale = if half <= f32::EPSILON {
            1.0
        } else {
            1.0 / half
        };
        for p in &mut self.positions {
            *p = (*p - center) * scale;
        }
        Ok((center, scale))
    }

    /// The cloud's 64-bit geometry digest (see [`geometry_digest`]),
    /// memoized after the first call and invalidated by every
    /// position-mutating method. Streaming consumers use it as a cheap
    /// first-pass identity check: the engine's index cache compares digests
    /// before paying an element-wise position compare, so mismatched frames
    /// short-circuit without scanning the cloud.
    pub fn geometry_digest(&self) -> u64 {
        *self.digest.get_or_init(|| geometry_digest(&self.positions))
    }

    /// Approximate wire size in bytes of this cloud when transmitted with the
    /// repo's binary encoding: 12 bytes per position plus 3 per color.
    /// This is the quantity the streaming simulator charges to the network.
    pub fn byte_size(&self) -> usize {
        let pos = self.positions.len() * 12;
        let col = self.colors.as_ref().map_or(0, |c| c.len() * 3);
        pos + col
    }

    /// Average nearest-neighbor spacing estimated from a random subset of up
    /// to `samples` points. Returns `None` for clouds with fewer than two
    /// points. Used by synthetic-data tests and density heuristics.
    pub fn mean_spacing(&self, samples: usize) -> Option<f32> {
        if self.len() < 2 {
            return None;
        }
        let stride = (self.len() / samples.max(1)).max(1);
        let mut total = 0.0f64;
        let mut count = 0usize;
        for i in (0..self.len()).step_by(stride) {
            let p = self.positions[i];
            let mut best = f32::INFINITY;
            for (j, &q) in self.positions.iter().enumerate() {
                if i != j {
                    let d = p.distance_squared(q);
                    if d < best {
                        best = d;
                    }
                }
            }
            total += f64::from(best.sqrt());
            count += 1;
        }
        Some((total / count as f64) as f32)
    }
}

impl FromIterator<Point3> for PointCloud {
    fn from_iter<T: IntoIterator<Item = Point3>>(iter: T) -> Self {
        PointCloud::from_positions(iter.into_iter().collect())
    }
}

impl Extend<Point3> for PointCloud {
    fn extend<T: IntoIterator<Item = Point3>>(&mut self, iter: T) {
        for p in iter {
            self.push(p, None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn colored_cloud() -> PointCloud {
        PointCloud::from_positions_and_colors(
            vec![
                Point3::new(0.0, 0.0, 0.0),
                Point3::new(1.0, 0.0, 0.0),
                Point3::new(0.0, 2.0, 0.0),
                Point3::new(0.0, 0.0, 4.0),
            ],
            vec![
                Color::new(255, 0, 0),
                Color::new(0, 255, 0),
                Color::new(0, 0, 255),
                Color::new(9, 9, 9),
            ],
        )
        .unwrap()
    }

    #[test]
    fn mismatched_colors_rejected() {
        let err = PointCloud::from_positions_and_colors(
            vec![Point3::ZERO],
            vec![Color::BLACK, Color::WHITE],
        )
        .unwrap_err();
        assert!(matches!(
            err,
            Error::AttributeMismatch {
                positions: 1,
                attributes: 2
            }
        ));
    }

    #[test]
    fn push_and_iter() {
        let mut c = PointCloud::new();
        c.push(Point3::ZERO, Some(Color::WHITE));
        c.push(Point3::ONE, None);
        assert_eq!(c.len(), 2);
        assert!(c.has_colors());
        let collected: Vec<_> = c.iter().collect();
        assert_eq!(collected[0].1, Some(Color::WHITE));
        assert_eq!(collected[1].1, Some(Color::BLACK));
    }

    #[test]
    fn select_preserves_colors() {
        let c = colored_cloud();
        let sub = c.select(&[2, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.position(0), Point3::new(0.0, 2.0, 0.0));
        assert_eq!(sub.color(1), Some(Color::new(255, 0, 0)));
    }

    #[test]
    fn merge_mixed_colorness() {
        let mut a = PointCloud::from_positions(vec![Point3::ZERO]);
        let b = colored_cloud();
        a.merge(&b);
        assert_eq!(a.len(), 5);
        assert!(a.has_colors());
        assert_eq!(a.color(0), Some(Color::BLACK));
        assert_eq!(a.color(1), Some(Color::new(255, 0, 0)));
    }

    #[test]
    fn bounds_and_centroid() {
        let c = colored_cloud();
        let b = c.bounds().unwrap();
        assert_eq!(b.min, Point3::ZERO);
        assert_eq!(b.max, Point3::new(1.0, 2.0, 4.0));
        let centroid = c.centroid().unwrap();
        assert!((centroid.x - 0.25).abs() < 1e-6);
        assert!(PointCloud::new().centroid().is_none());
    }

    #[test]
    fn normalize_unit_cube_bounds() {
        let mut c = colored_cloud();
        c.normalize_unit_cube().unwrap();
        let b = c.bounds().unwrap();
        assert!(b.min.min_element() >= -1.0 - 1e-5);
        assert!(b.max.max_element() <= 1.0 + 1e-5);
        assert!(PointCloud::new().normalize_unit_cube().is_err());
    }

    #[test]
    fn translate_and_scale() {
        let mut c = PointCloud::from_positions(vec![Point3::ONE]);
        c.translate(Point3::new(1.0, 0.0, 0.0));
        assert_eq!(c.position(0), Point3::new(2.0, 1.0, 1.0));
        c.scale(0.5);
        assert_eq!(c.position(0), Point3::new(1.0, 0.5, 0.5));
    }

    #[test]
    fn byte_size_model() {
        let c = colored_cloud();
        assert_eq!(c.byte_size(), 4 * 12 + 4 * 3);
        let plain = PointCloud::from_positions(vec![Point3::ZERO; 10]);
        assert_eq!(plain.byte_size(), 120);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut c: PointCloud = (0..5).map(|i| Point3::splat(i as f32)).collect();
        assert_eq!(c.len(), 5);
        c.extend(vec![Point3::ZERO]);
        assert_eq!(c.len(), 6);
    }

    #[test]
    fn geometry_digest_tracks_positions_only() {
        let mut a = colored_cloud();
        let d0 = a.geometry_digest();
        // Memoized: repeated calls agree; equal content hashes equal.
        assert_eq!(a.geometry_digest(), d0);
        assert_eq!(colored_cloud().geometry_digest(), d0);
        assert_eq!(geometry_digest(a.positions()), d0);
        // Color-only mutation does not change the geometry digest.
        let colors = a.take_colors().unwrap();
        a.set_colors(colors).unwrap();
        assert_eq!(a.geometry_digest(), d0);
        // Every position mutator invalidates.
        a.translate(Point3::new(1.0, 0.0, 0.0));
        let d1 = a.geometry_digest();
        assert_ne!(d1, d0);
        a.scale(2.0);
        assert_ne!(a.geometry_digest(), d1);
        let d2 = a.geometry_digest();
        a.push(Point3::ZERO, None);
        assert_ne!(a.geometry_digest(), d2);
        let d3 = a.geometry_digest();
        a.positions_mut()[0].x += 1.0;
        assert_ne!(a.geometry_digest(), d3);
        // Order and sign-of-zero sensitivity.
        let fwd = PointCloud::from_positions(vec![Point3::ZERO, Point3::ONE]);
        let rev = PointCloud::from_positions(vec![Point3::ONE, Point3::ZERO]);
        assert_ne!(fwd.geometry_digest(), rev.geometry_digest());
        let neg = PointCloud::from_positions(vec![Point3::new(-0.0, 0.0, 0.0), Point3::ONE]);
        assert_ne!(fwd.geometry_digest(), neg.geometry_digest());
    }

    /// Invalidation audit: every position-mutating method must reset the
    /// memoized digest, or the engine's index cache would keep serving a
    /// stale spatial index for the mutated cloud. Any new mutator belongs in
    /// this list.
    #[test]
    fn every_position_mutator_invalidates_the_digest() {
        let mutators: Vec<(&str, fn(&mut PointCloud))> = vec![
            ("push", |c| c.push(Point3::splat(9.0), None)),
            ("extend_positions", |c| {
                c.extend_positions(&[Point3::splat(7.0), Point3::splat(8.0)]);
            }),
            ("Extend::extend", |c| c.extend(vec![Point3::splat(6.0)])),
            ("merge", |c| {
                c.merge(&PointCloud::from_positions(vec![Point3::splat(5.0)]));
            }),
            ("translate", |c| c.translate(Point3::new(0.5, 0.0, 0.0))),
            ("scale", |c| c.scale(3.0)),
            ("normalize_unit_cube", |c| {
                c.normalize_unit_cube().unwrap();
            }),
            ("positions_mut", |c| c.positions_mut()[0].y = -2.0),
        ];
        for (name, mutate) in mutators {
            let mut cloud = colored_cloud();
            let before = cloud.geometry_digest();
            mutate(&mut cloud);
            // The digest must both change and match a fresh recomputation.
            assert_ne!(cloud.geometry_digest(), before, "{name} left digest stale");
            assert_eq!(
                cloud.geometry_digest(),
                geometry_digest(cloud.positions()),
                "{name} digest does not match recomputation"
            );
        }
        // `select` builds a fresh cloud: its digest must reflect the subset.
        let c = colored_cloud();
        let sub = c.select(&[1, 3]);
        assert_eq!(sub.geometry_digest(), geometry_digest(sub.positions()));
        assert_ne!(sub.geometry_digest(), c.geometry_digest());
    }

    #[test]
    fn extend_positions_matches_repeated_push() {
        let tail = [Point3::splat(4.0), Point3::splat(5.0)];
        // Colored cloud: new points are padded with black, like `push`.
        let mut bulk = colored_cloud();
        let mut pushed = colored_cloud();
        bulk.extend_positions(&tail);
        for &p in &tail {
            pushed.push(p, None);
        }
        assert_eq!(bulk, pushed);
        // Uncolored cloud stays uncolored.
        let mut plain = PointCloud::from_positions(vec![Point3::ZERO]);
        plain.extend_positions(&tail);
        assert_eq!(plain.len(), 3);
        assert!(!plain.has_colors());
        // Empty batch is a no-op that keeps the memoized digest.
        let d = plain.geometry_digest();
        plain.extend_positions(&[]);
        assert_eq!(plain.geometry_digest(), d);
    }

    #[test]
    fn mean_spacing_reasonable() {
        let c =
            PointCloud::from_positions((0..10).map(|i| Point3::new(i as f32, 0.0, 0.0)).collect());
        let s = c.mean_spacing(10).unwrap();
        assert!((s - 1.0).abs() < 1e-5);
        assert!(PointCloud::from_positions(vec![Point3::ZERO])
            .mean_spacing(4)
            .is_none());
    }
}

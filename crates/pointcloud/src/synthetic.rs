//! Procedural synthetic point clouds.
//!
//! The paper evaluates on four captured volumetric videos (Long Dress, Loot,
//! Haggle, Lab) that are not redistributable; this module generates
//! procedural stand-ins with comparable characteristics: surface-like
//! distributions, local density variation, curvature, fine detail and smooth
//! per-point color fields. See DESIGN.md §2 for the substitution rationale.

use crate::cloud::PointCloud;
use crate::delta::FrameDelta;
use crate::point::{Color, Point3};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::f32::consts::PI;

/// Uniformly samples `n` points on a sphere of radius `radius`, colored by a
/// smooth angular color field.
pub fn sphere(n: usize, radius: f32, seed: u64) -> PointCloud {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut positions = Vec::with_capacity(n);
    let mut colors = Vec::with_capacity(n);
    for _ in 0..n {
        let z: f32 = rng.random_range(-1.0..1.0);
        let theta: f32 = rng.random_range(0.0..2.0 * PI);
        let r_xy = (1.0 - z * z).sqrt();
        let p = Point3::new(r_xy * theta.cos(), r_xy * theta.sin(), z) * radius;
        positions.push(p);
        colors.push(angular_color(p));
    }
    PointCloud::from_positions_and_colors(positions, colors).expect("lengths match")
}

/// Samples `n` points on a torus with major radius `major` and minor radius
/// `minor`, colored by position.
pub fn torus(n: usize, major: f32, minor: f32, seed: u64) -> PointCloud {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut positions = Vec::with_capacity(n);
    let mut colors = Vec::with_capacity(n);
    for _ in 0..n {
        let u: f32 = rng.random_range(0.0..2.0 * PI);
        let v: f32 = rng.random_range(0.0..2.0 * PI);
        let p = Point3::new(
            (major + minor * v.cos()) * u.cos(),
            (major + minor * v.cos()) * u.sin(),
            minor * v.sin(),
        );
        positions.push(p);
        colors.push(angular_color(p));
    }
    PointCloud::from_positions_and_colors(positions, colors).expect("lengths match")
}

/// Samples `n` points on an axis-aligned rectangle in the XY plane with a
/// checker color pattern. `noise` adds Gaussian-ish jitter along Z to mimic
/// capture noise.
pub fn plane(n: usize, width: f32, height: f32, noise: f32, seed: u64) -> PointCloud {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut positions = Vec::with_capacity(n);
    let mut colors = Vec::with_capacity(n);
    for _ in 0..n {
        let x: f32 = rng.random_range(-0.5f32..0.5) * width;
        let y: f32 = rng.random_range(-0.5f32..0.5) * height;
        let z = gaussian(&mut rng) * noise;
        positions.push(Point3::new(x, y, z));
        let checker = (((x * 4.0 / width).floor() + (y * 4.0 / height).floor()) as i32) % 2 == 0;
        colors.push(if checker {
            Color::new(220, 220, 220)
        } else {
            Color::new(40, 40, 40)
        });
    }
    PointCloud::from_positions_and_colors(positions, colors).expect("lengths match")
}

/// Samples `n` points on the surface of an axis-aligned box.
pub fn box_surface(n: usize, extent: Point3, seed: u64) -> PointCloud {
    let mut rng = StdRng::seed_from_u64(seed);
    let half = extent * 0.5;
    let areas = [
        extent.y * extent.z,
        extent.y * extent.z,
        extent.x * extent.z,
        extent.x * extent.z,
        extent.x * extent.y,
        extent.x * extent.y,
    ];
    let total: f32 = areas.iter().sum();
    let mut positions = Vec::with_capacity(n);
    let mut colors = Vec::with_capacity(n);
    for _ in 0..n {
        let mut pick = rng.random_range(0.0..total.max(f32::EPSILON));
        let mut face = 0usize;
        for (i, a) in areas.iter().enumerate() {
            if pick < *a {
                face = i;
                break;
            }
            pick -= a;
        }
        let u: f32 = rng.random_range(-1.0..1.0);
        let v: f32 = rng.random_range(-1.0..1.0);
        let p = match face {
            0 => Point3::new(half.x, u * half.y, v * half.z),
            1 => Point3::new(-half.x, u * half.y, v * half.z),
            2 => Point3::new(u * half.x, half.y, v * half.z),
            3 => Point3::new(u * half.x, -half.y, v * half.z),
            4 => Point3::new(u * half.x, v * half.y, half.z),
            _ => Point3::new(u * half.x, v * half.y, -half.z),
        };
        positions.push(p);
        colors.push(Color::from_f32([
            (face as f32 + 1.0) / 6.0,
            0.5,
            1.0 - (face as f32) / 6.0,
        ]));
    }
    PointCloud::from_positions_and_colors(positions, colors).expect("lengths match")
}

/// A crude articulated humanoid built from ellipsoid and cylinder parts.
///
/// `pose_phase` (radians) swings the arms/legs so that a sequence of
/// increasing phases yields an animated "walking" figure — the stand-in for
/// the paper's Long Dress / Loot human captures.
pub fn humanoid(n: usize, pose_phase: f32, seed: u64) -> PointCloud {
    let mut rng = StdRng::seed_from_u64(seed);
    // Body parts: (center, radii, weight, base color)
    let swing = pose_phase.sin() * 0.3;
    let parts: Vec<(Point3, Point3, f32, Color)> = vec![
        // torso
        (
            Point3::new(0.0, 0.0, 1.2),
            Point3::new(0.28, 0.18, 0.42),
            3.0,
            Color::new(180, 40, 60),
        ),
        // head
        (
            Point3::new(0.0, 0.0, 1.85),
            Point3::new(0.14, 0.15, 0.16),
            1.0,
            Color::new(230, 190, 160),
        ),
        // left arm
        (
            Point3::new(-0.38, swing * 0.4, 1.3),
            Point3::new(0.08, 0.08, 0.35),
            1.0,
            Color::new(230, 190, 160),
        ),
        // right arm
        (
            Point3::new(0.38, -swing * 0.4, 1.3),
            Point3::new(0.08, 0.08, 0.35),
            1.0,
            Color::new(230, 190, 160),
        ),
        // left leg
        (
            Point3::new(-0.15, swing * 0.5, 0.45),
            Point3::new(0.1, 0.1, 0.45),
            1.6,
            Color::new(40, 40, 120),
        ),
        // right leg
        (
            Point3::new(0.15, -swing * 0.5, 0.45),
            Point3::new(0.1, 0.1, 0.45),
            1.6,
            Color::new(40, 40, 120),
        ),
        // skirt / dress flare
        (
            Point3::new(0.0, 0.0, 0.8),
            Point3::new(0.35, 0.3, 0.2),
            2.0,
            Color::new(200, 60, 90),
        ),
    ];
    let total_weight: f32 = parts.iter().map(|p| p.2).sum();
    let mut positions = Vec::with_capacity(n);
    let mut colors = Vec::with_capacity(n);
    for _ in 0..n {
        let mut pick = rng.random_range(0.0..total_weight);
        let mut chosen = &parts[0];
        for part in &parts {
            if pick < part.2 {
                chosen = part;
                break;
            }
            pick -= part.2;
        }
        let (center, radii, _, base) = chosen;
        // Sample on the ellipsoid surface.
        let z: f32 = rng.random_range(-1.0..1.0);
        let theta: f32 = rng.random_range(0.0..2.0 * PI);
        let r_xy = (1.0 - z * z).sqrt();
        let unit = Point3::new(r_xy * theta.cos(), r_xy * theta.sin(), z);
        let p = Point3::new(
            center.x + unit.x * radii.x,
            center.y + unit.y * radii.y,
            center.z + unit.z * radii.z,
        );
        // Cloth-like high frequency detail on colors.
        let stripe = ((p.z * 40.0).sin() * 0.5 + 0.5) * 0.3 + 0.7;
        let c = Color::from_f32([
            base.to_f32()[0] * stripe,
            base.to_f32()[1] * stripe,
            base.to_f32()[2] * stripe,
        ]);
        positions.push(p);
        colors.push(c);
    }
    PointCloud::from_positions_and_colors(positions, colors).expect("lengths match")
}

/// Several Gaussian blobs: a highly non-uniform density cloud used to stress
/// the dilated interpolation (dense cores, sparse fringes).
pub fn gaussian_blobs(n: usize, blobs: usize, spread: f32, seed: u64) -> PointCloud {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
    let blobs = blobs.max(1);
    let centers: Vec<Point3> = (0..blobs)
        .map(|_| {
            Point3::new(
                rng.random_range(-spread..spread),
                rng.random_range(-spread..spread),
                rng.random_range(-spread..spread),
            )
        })
        .collect();
    let mut positions = Vec::with_capacity(n);
    let mut colors = Vec::with_capacity(n);
    for i in 0..n {
        let b = i % blobs;
        let sigma = 0.1 + 0.2 * (b as f32 / blobs as f32);
        let p = centers[b]
            + Point3::new(
                gaussian(&mut rng) * sigma,
                gaussian(&mut rng) * sigma,
                gaussian(&mut rng) * sigma,
            );
        positions.push(p);
        colors.push(Color::from_f32([
            b as f32 / blobs as f32,
            1.0 - b as f32 / blobs as f32,
            0.5,
        ]));
    }
    PointCloud::from_positions_and_colors(positions, colors).expect("lengths match")
}

/// A room-like scene: floor plane, two walls and two humanoids — the stand-in
/// for the multi-person "Haggle" / "Lab" captures.
pub fn room_scene(n: usize, phase: f32, seed: u64) -> PointCloud {
    let quarter = n / 4;
    let mut scene = plane(quarter, 4.0, 4.0, 0.01, seed);
    let mut wall = plane(quarter, 4.0, 2.5, 0.01, seed.wrapping_add(1));
    // Stand the wall up along X-Z and push it to the back of the room.
    for p in wall.positions_mut() {
        let y = p.y;
        p.y = -2.0 + p.z;
        p.z = y + 1.25;
    }
    scene.merge(&wall);
    let mut person_a = humanoid(quarter, phase, seed.wrapping_add(2));
    person_a.translate(Point3::new(-0.8, 0.3, 0.0));
    let mut person_b = humanoid(n - 3 * quarter, phase + PI / 2.0, seed.wrapping_add(3));
    person_b.translate(Point3::new(0.8, -0.3, 0.0));
    scene.merge(&person_a);
    scene.merge(&person_b);
    scene
}

/// Uniform random noise inside a cube — worst case for any surface prior.
pub fn uniform_noise(n: usize, half_extent: f32, seed: u64) -> PointCloud {
    let mut rng = StdRng::seed_from_u64(seed);
    let positions = (0..n)
        .map(|_| {
            Point3::new(
                rng.random_range(-half_extent..half_extent),
                rng.random_range(-half_extent..half_extent),
                rng.random_range(-half_extent..half_extent),
            )
        })
        .collect::<Vec<_>>();
    let colors = positions.iter().map(|p| angular_color(*p)).collect();
    PointCloud::from_positions_and_colors(positions, colors).expect("lengths match")
}

/// Configuration of a [`DeltaStream`] — the synthetic stand-in for a
/// chunked volumetric stream's frame-to-frame churn.
#[derive(Debug, Clone, Copy)]
pub struct DeltaStreamConfig {
    /// Fraction of points replaced per frame (`0.0..=1.0`). The churned set
    /// is a *spatially coherent* cluster (the nearest points around a random
    /// anchor), matching how chunked delivery and moving subjects change a
    /// real volumetric frame — scattered random churn would invalidate far
    /// more cached neighborhoods than streaming workloads actually do.
    pub churn: f64,
    /// Distance the replacement cluster drifts from the removed cluster's
    /// centroid each frame (world units; pick relative to the cloud extent).
    pub drift: f32,
    /// Per-point Gaussian jitter of the reinserted points. Keep nonzero so
    /// reinsertions are bitwise-fresh points rather than exact duplicates of
    /// the removed ones.
    pub jitter: f32,
    /// Seed of the stream's RNG (frame sequences are deterministic per
    /// seed).
    pub seed: u64,
}

impl Default for DeltaStreamConfig {
    fn default() -> Self {
        Self {
            churn: 0.1,
            drift: 0.05,
            jitter: 0.01,
            seed: 0,
        }
    }
}

/// A deterministic delta-frame sequence: each [`DeltaStream::advance`] call
/// removes a spatially coherent cluster of points and reinserts a drifted,
/// jittered copy of it (appended after the survivors), returning the exact
/// [`FrameDelta`] describing the step. Survivors keep their relative order
/// and bitwise positions, so the deltas uphold the order invariant the
/// incremental kNN consumers rely on (see [`crate::delta`]).
///
/// # Example
///
/// ```
/// use volut_pointcloud::synthetic::{self, DeltaStream, DeltaStreamConfig};
/// let base = synthetic::humanoid(2_000, 0.5, 1);
/// let mut stream = DeltaStream::new(base, DeltaStreamConfig::default());
/// let before = stream.frame().clone();
/// let delta = stream.advance();
/// assert!(delta.verify(before.positions(), stream.frame().positions()).is_ok());
/// assert_eq!(stream.frame().len(), 2_000);
/// ```
#[derive(Debug, Clone)]
pub struct DeltaStream {
    frame: PointCloud,
    cfg: DeltaStreamConfig,
    rng: StdRng,
}

impl DeltaStream {
    /// Starts a stream at `base` (frame 0).
    pub fn new(base: PointCloud, cfg: DeltaStreamConfig) -> Self {
        Self {
            rng: StdRng::seed_from_u64(cfg.seed ^ 0xD3_17A5),
            frame: base,
            cfg,
        }
    }

    /// The current frame.
    pub fn frame(&self) -> &PointCloud {
        &self.frame
    }

    /// Advances to the next frame and returns the delta that produced it.
    pub fn advance(&mut self) -> FrameDelta {
        let n = self.frame.len();
        let m = ((n as f64 * self.cfg.churn).round() as usize).min(n);
        if m == 0 {
            return FrameDelta::from_parts(n, n, Vec::new(), Vec::new())
                .expect("identity delta is always consistent");
        }
        let positions = self.frame.positions();
        // The churned set: the m nearest points around a random anchor
        // (ties index-broken through the packed key, so selection is
        // deterministic).
        let anchor = positions[self.rng.random_range(0..n)];
        let mut keyed: Vec<(u64, u32)> = positions
            .iter()
            .enumerate()
            .map(|(i, p)| {
                (
                    (u64::from(p.distance_squared(anchor).to_bits()) << 32) | i as u64,
                    i as u32,
                )
            })
            .collect();
        keyed.sort_unstable();
        let mut removed: Vec<u32> = keyed[..m].iter().map(|&(_, i)| i).collect();
        removed.sort_unstable();

        // Replacement cluster: the removed points shifted to a drifted
        // center, with per-point jitter.
        let centroid = removed
            .iter()
            .fold(Point3::ZERO, |acc, &i| acc + positions[i as usize])
            / m as f32;
        let z: f32 = self.rng.random_range(-1.0..1.0);
        let theta: f32 = self.rng.random_range(0.0..2.0 * PI);
        let r_xy = (1.0 - z * z).sqrt();
        let dir = Point3::new(r_xy * theta.cos(), r_xy * theta.sin(), z);
        let target = centroid + dir * self.cfg.drift;
        let colors = self.frame.colors();
        let mut new_positions = Vec::with_capacity(n);
        let mut new_colors = colors.map(|_| Vec::with_capacity(n));
        let mut removed_mark = vec![false; n];
        for &i in &removed {
            removed_mark[i as usize] = true;
        }
        for (i, &p) in positions.iter().enumerate() {
            if !removed_mark[i] {
                new_positions.push(p);
                if let (Some(out), Some(c)) = (new_colors.as_mut(), colors) {
                    out.push(c[i]);
                }
            }
        }
        for &i in &removed {
            let p = positions[i as usize] - centroid
                + target
                + Point3::new(
                    gaussian(&mut self.rng),
                    gaussian(&mut self.rng),
                    gaussian(&mut self.rng),
                ) * self.cfg.jitter;
            new_positions.push(p);
            if let (Some(out), Some(c)) = (new_colors.as_mut(), colors) {
                out.push(c[i as usize]);
            }
        }
        let inserted: Vec<u32> = ((n - m) as u32..n as u32).collect();
        let delta = FrameDelta::from_parts(n, n, removed, inserted)
            .expect("constructed counts are consistent");
        self.frame = match new_colors {
            Some(c) => PointCloud::from_positions_and_colors(new_positions, c)
                .expect("lengths match by construction"),
            None => PointCloud::from_positions(new_positions),
        };
        delta
    }
}

/// Materializes `frames` frames of a [`DeltaStream`] over `base` (frame 0 is
/// `base` itself) — the convenience form for benches and tests that want the
/// whole churned sequence up front.
pub fn delta_frame_sequence(
    base: &PointCloud,
    frames: usize,
    cfg: DeltaStreamConfig,
) -> Vec<PointCloud> {
    let mut stream = DeltaStream::new(base.clone(), cfg);
    let mut out = Vec::with_capacity(frames);
    if frames > 0 {
        out.push(base.clone());
    }
    for _ in 1..frames {
        stream.advance();
        out.push(stream.frame().clone());
    }
    out
}

/// Smooth color field used by several generators so that colorization has a
/// meaningful signal to reconstruct.
fn angular_color(p: Point3) -> Color {
    let n = p.normalized().unwrap_or(Point3::new(1.0, 0.0, 0.0));
    Color::from_f32([0.5 + 0.5 * n.x, 0.5 + 0.5 * n.y, 0.5 + 0.5 * n.z])
}

/// Box–Muller standard normal sample.
fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.random_range(f32::EPSILON..1.0);
    let u2: f32 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aabb::Aabb;

    #[test]
    fn generators_produce_requested_counts() {
        assert_eq!(sphere(100, 1.0, 1).len(), 100);
        assert_eq!(torus(200, 1.0, 0.3, 1).len(), 200);
        assert_eq!(plane(50, 2.0, 2.0, 0.0, 1).len(), 50);
        assert_eq!(box_surface(150, Point3::ONE, 1).len(), 150);
        assert_eq!(humanoid(300, 0.0, 1).len(), 300);
        assert_eq!(gaussian_blobs(120, 4, 1.0, 1).len(), 120);
        assert_eq!(uniform_noise(80, 1.0, 1).len(), 80);
        assert_eq!(room_scene(400, 0.0, 1).len(), 400);
    }

    #[test]
    fn all_generators_are_colored_and_finite() {
        let clouds = vec![
            sphere(100, 1.0, 2),
            torus(100, 1.0, 0.3, 2),
            plane(100, 1.0, 1.0, 0.05, 2),
            box_surface(100, Point3::new(1.0, 2.0, 3.0), 2),
            humanoid(100, 0.3, 2),
            gaussian_blobs(100, 3, 1.0, 2),
            uniform_noise(100, 1.0, 2),
            room_scene(100, 0.3, 2),
        ];
        for c in clouds {
            assert!(c.has_colors());
            assert!(c.positions().iter().all(|p| p.is_finite()));
        }
    }

    #[test]
    fn sphere_points_lie_on_sphere() {
        let c = sphere(500, 2.0, 3);
        for &p in c.positions() {
            assert!((p.norm() - 2.0).abs() < 1e-4);
        }
    }

    #[test]
    fn torus_points_lie_on_torus() {
        let c = torus(500, 1.0, 0.25, 3);
        for &p in c.positions() {
            let ring = (p.x * p.x + p.y * p.y).sqrt() - 1.0;
            let d = (ring * ring + p.z * p.z).sqrt();
            assert!((d - 0.25).abs() < 1e-4);
        }
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        assert_eq!(humanoid(100, 0.5, 7), humanoid(100, 0.5, 7));
        assert_ne!(humanoid(100, 0.5, 7), humanoid(100, 0.5, 8));
    }

    #[test]
    fn humanoid_animation_changes_geometry() {
        let a = humanoid(500, 0.0, 9);
        let b = humanoid(500, PI / 2.0, 9);
        assert_ne!(a, b);
    }

    #[test]
    fn delta_stream_produces_verified_deltas() {
        let base = humanoid(2_000, 0.4, 3);
        let mut stream = DeltaStream::new(
            base,
            DeltaStreamConfig {
                churn: 0.1,
                drift: 0.08,
                jitter: 0.01,
                seed: 5,
            },
        );
        for _ in 0..5 {
            let before = stream.frame().clone();
            let delta = stream.advance();
            let after = stream.frame();
            assert_eq!(after.len(), 2_000, "point count is conserved");
            assert!(after.has_colors());
            assert_eq!(delta.removed().len(), 200);
            assert_eq!(delta.inserted().len(), 200);
            assert!(delta.verify(before.positions(), after.positions()).is_ok());
            // The diff recovers a delta at most as churned as the truth
            // (bitwise-identical survivors must all match).
            let diffed = FrameDelta::diff(before.positions(), after.positions());
            assert!(diffed.verify(before.positions(), after.positions()).is_ok());
            assert!(diffed.survivors() >= delta.survivors());
        }
    }

    #[test]
    fn delta_stream_is_deterministic_and_coherent() {
        let base = sphere(1_000, 1.0, 9);
        let cfg = DeltaStreamConfig {
            churn: 0.2,
            ..DeltaStreamConfig::default()
        };
        let a = delta_frame_sequence(&base, 4, cfg);
        let b = delta_frame_sequence(&base, 4, cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert_eq!(a[0], base);
        assert_ne!(a[0], a[1]);
        // Spatial coherence: the removed set is a cluster, so its bounding
        // box is much smaller than the cloud's.
        let mut stream = DeltaStream::new(base.clone(), cfg);
        let before = stream.frame().clone();
        let delta = stream.advance();
        let cluster = Aabb::from_points(
            delta
                .removed()
                .iter()
                .map(|&i| before.positions()[i as usize]),
        )
        .unwrap();
        let whole = before.bounds().unwrap();
        assert!(cluster.half_diagonal() < whole.half_diagonal() * 0.8);
    }

    #[test]
    fn delta_stream_edge_churns() {
        let base = sphere(300, 1.0, 11);
        // churn 0: identity deltas, frame untouched.
        let mut stream = DeltaStream::new(
            base.clone(),
            DeltaStreamConfig {
                churn: 0.0,
                ..DeltaStreamConfig::default()
            },
        );
        let d = stream.advance();
        assert!(d.is_identity());
        assert_eq!(stream.frame(), &base);
        // churn 1: everything replaced, still verified.
        let mut stream = DeltaStream::new(
            base.clone(),
            DeltaStreamConfig {
                churn: 1.0,
                ..DeltaStreamConfig::default()
            },
        );
        let before = stream.frame().clone();
        let d = stream.advance();
        assert_eq!(d.survivors(), 0);
        assert!(d
            .verify(before.positions(), stream.frame().positions())
            .is_ok());
    }

    #[test]
    fn blobs_are_nonuniform() {
        let c = gaussian_blobs(1000, 5, 2.0, 11);
        // Spacing near a dense core should be much smaller than the extremes.
        let spacing = c.mean_spacing(50).unwrap();
        let bounds = c.bounds().unwrap();
        assert!(spacing < bounds.extent().norm() / 10.0);
    }
}

//! Hashed voxel-grid neighbor search.
//!
//! A uniform hash grid keyed by integer voxel coordinates. For clouds with
//! roughly uniform density it answers kNN queries by growing a ring search
//! outward from the query voxel, which makes it a good backend for the
//! colorization stage where queries are near-surface and k is tiny.

use crate::kernels;
use crate::knn::{batch_queries, finalize_candidates, BestK, Neighbor, NeighborSearch};
use crate::neighborhoods::Neighborhoods;
use crate::point::Point3;
use crate::soa::SoaPositions;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Integer voxel coordinate.
type VoxelKey = (i32, i32, i32);

/// Multiply-fold hasher for voxel keys. The ring search probes dozens of
/// cells per query, and SipHash (the `HashMap` default, keyed to resist
/// adversarial collisions) costs more than the probe it guards — voxel
/// coordinates are trusted local data, so a two-instruction mix suffices.
#[derive(Default)]
struct VoxelKeyHasher(u64);

impl Hasher for VoxelKeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        let mut h = self.0;
        h ^= h >> 29;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^ (h >> 32)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.write_i32(i as i32);
    }

    #[inline]
    fn write_i32(&mut self, i: i32) {
        self.0 = (self.0.rotate_left(21) ^ (i as u32 as u64)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.0 = (self.0.rotate_left(21) ^ i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

/// Cell map keyed by voxel coordinate with the cheap hasher above; the value
/// is the cell's slot in the slab-range table, not a per-cell `Vec` — point
/// storage lives in one shared SoA slab (see [`VoxelGrid`]).
type CellMap = HashMap<VoxelKey, u32, BuildHasherDefault<VoxelKeyHasher>>;

/// Hashed uniform voxel grid over a fixed point set.
///
/// # Example
///
/// ```
/// use volut_pointcloud::{voxelgrid::VoxelGrid, knn::NeighborSearch, Point3};
/// let pts: Vec<Point3> = (0..64).map(|i| Point3::new((i % 4) as f32, ((i / 4) % 4) as f32, (i / 16) as f32)).collect();
/// let grid = VoxelGrid::build(&pts, 1.0);
/// assert_eq!(grid.knn(Point3::new(0.2, 0.2, 0.2), 1)[0].index, 0);
/// ```
#[derive(Debug, Clone)]
pub struct VoxelGrid {
    points: Vec<Point3>,
    voxel_size: f32,
    /// Voxel coordinate → cell slot.
    cells: CellMap,
    /// Per-cell slab ranges: slot `c` owns `ids[starts[c]..starts[c + 1]]`
    /// (one trailing sentinel entry).
    starts: Vec<u32>,
    /// Slab position → original point index, grouped by cell.
    ids: Vec<u32>,
    /// Positions in slab order: each cell is a contiguous SoA run, so the
    /// ring search scans cells with the shared 8-wide distance kernel.
    soa: SoaPositions,
    /// Build scratch: per-cell counts, then the scatter cursor.
    cursor: Vec<u32>,
    /// Build scratch: per-point cell slot from the counting pass.
    slot_of: Vec<u32>,
}

impl VoxelGrid {
    /// Builds a voxel grid with the given voxel edge length.
    ///
    /// # Panics
    /// Panics if `voxel_size` is not strictly positive or not finite.
    pub fn build(points: &[Point3], voxel_size: f32) -> Self {
        let mut grid = Self {
            points: Vec::new(),
            voxel_size: 1.0,
            cells: CellMap::default(),
            starts: Vec::new(),
            ids: Vec::new(),
            soa: SoaPositions::default(),
            cursor: Vec::new(),
            slot_of: Vec::new(),
        };
        grid.build_in(points, voxel_size);
        grid
    }

    /// Rebuilds this grid over `points` with the given voxel edge length,
    /// reusing the point storage and cell-map allocation already owned by
    /// `self` (scratch-resident rebuilds for streaming sessions).
    ///
    /// # Panics
    /// Panics if `voxel_size` is not strictly positive or not finite.
    pub fn build_in(&mut self, points: &[Point3], voxel_size: f32) {
        assert!(
            voxel_size > 0.0 && voxel_size.is_finite(),
            "voxel_size must be positive and finite"
        );
        self.points.clear();
        self.points.extend_from_slice(points);
        self.voxel_size = voxel_size;
        self.cells.clear();
        // Counting-sort build of the per-cell SoA slabs: assign slots and
        // count (pass 1), prefix-sum the ranges, scatter ids in point order
        // so each cell's slab keeps ascending original indices (pass 2).
        self.cursor.clear();
        self.slot_of.clear();
        for &p in points {
            let next = self.cursor.len() as u32;
            let slot = *self
                .cells
                .entry(Self::key_of(p, voxel_size))
                .or_insert(next);
            if slot == next {
                self.cursor.push(0);
            }
            self.cursor[slot as usize] += 1;
            self.slot_of.push(slot);
        }
        self.starts.clear();
        self.starts.push(0);
        let mut acc = 0u32;
        for &count in &self.cursor {
            acc += count;
            self.starts.push(acc);
        }
        let slots = self.cursor.len();
        self.cursor.copy_from_slice(&self.starts[..slots]);
        self.ids.clear();
        self.ids.resize(points.len(), 0);
        for (i, &slot) in self.slot_of.iter().enumerate() {
            let pos = &mut self.cursor[slot as usize];
            self.ids[*pos as usize] = i as u32;
            *pos += 1;
        }
        self.soa.fill_permuted(points, &self.ids);
    }

    /// Builds a grid whose voxel size is chosen automatically so that an
    /// average voxel holds roughly `target_per_voxel` points (assuming the
    /// cloud is surface-like). Falls back to edge length 1.0 for empty clouds.
    pub fn build_auto(points: &[Point3], target_per_voxel: usize) -> Self {
        let bounds = crate::aabb::Aabb::from_points(points.iter().copied());
        let voxel = match bounds {
            Some(b) if !points.is_empty() => {
                let area_proxy = b.longest_edge().max(1e-6);
                // Surface-like clouds fill O(L^2 / s^2) voxels of size s.
                let per_axis =
                    ((points.len() as f32 / target_per_voxel.max(1) as f32).sqrt()).max(1.0);
                (area_proxy / per_axis).max(1e-6)
            }
            _ => 1.0,
        };
        Self::build(points, voxel)
    }

    /// The voxel edge length.
    pub fn voxel_size(&self) -> f32 {
        self.voxel_size
    }

    /// Number of occupied voxels.
    pub fn occupied_voxels(&self) -> usize {
        self.cells.len()
    }

    /// The indexed points.
    pub fn points(&self) -> &[Point3] {
        &self.points
    }

    fn key_of(p: Point3, s: f32) -> VoxelKey {
        (
            (p.x / s).floor() as i32,
            (p.y / s).floor() as i32,
            (p.z / s).floor() as i32,
        )
    }

    /// Visits every occupied cell exactly `ring` voxels (Chebyshev distance)
    /// away from the query's voxel, yielding its slab range.
    fn for_each_cell_in_ring(&self, center: VoxelKey, ring: i32, mut f: impl FnMut(usize, usize)) {
        for dx in -ring..=ring {
            for dy in -ring..=ring {
                for dz in -ring..=ring {
                    // Only the shell of the ring: inner voxels were already collected.
                    if dx.abs().max(dy.abs()).max(dz.abs()) != ring {
                        continue;
                    }
                    if let Some(&slot) =
                        self.cells
                            .get(&(center.0 + dx, center.1 + dy, center.2 + dz))
                    {
                        f(
                            self.starts[slot as usize] as usize,
                            self.starts[slot as usize + 1] as usize,
                        );
                    }
                }
            }
        }
    }

    /// Allocation-free exact kNN: results land in `best` (cleared first,
    /// sorted by `(distance, index)`). The ring search maintains the bounded
    /// best-`k` list incrementally instead of re-sorting the full candidate
    /// set on every ring, and one batch call shares the buffer across all
    /// its queries, which also warm-starts each query's ring-termination
    /// bound from the previous one's result (see [`BestK::begin_warm`];
    /// results are unaffected, a fresh accumulator simply starts cold).
    pub(crate) fn knn_into(&self, query: Point3, k: usize, best: &mut BestK) {
        best.begin_warm(k, query);
        if k == 0 || self.points.is_empty() {
            return;
        }
        let center = Self::key_of(query, self.voxel_size);
        let mut seen = 0usize;
        let mut ring = 0i32;
        // Expand rings until we have k candidates AND the next ring can no
        // longer contain a closer point than the current k-th best.
        loop {
            self.for_each_cell_in_ring(center, ring, |start, end| {
                seen += end - start;
                kernels::scan_ids(&self.soa, &self.ids, start, end, query, best);
            });
            // Any point in ring r+1 is at least r * voxel_size away from the
            // query (conservative lower bound). The `is_full` guard matters
            // under a warm-start cap: before k candidates exist, `worst_d2`
            // is the cap — a bound on the final answer, not proof the
            // remaining entries were scanned — and floating-point rounding
            // could place a tying point just beyond the scanned rings.
            let safe_radius = ring as f32 * self.voxel_size;
            if best.is_full() && best.worst_d2() <= safe_radius * safe_radius {
                return;
            }
            ring += 1;
            // Bail out when the search has covered the whole cloud extent.
            if ring > 1 + (self.points.len() as f32).cbrt() as i32 + 64 {
                if seen >= self.points.len() {
                    return;
                }
                // Fall back to scanning everything (correctness over speed).
                best.begin(k);
                kernels::scan_ids(&self.soa, &self.ids, 0, self.ids.len(), query, best);
                return;
            }
        }
    }
}

impl NeighborSearch for VoxelGrid {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn knn(&self, query: Point3, k: usize) -> Vec<Neighbor> {
        let mut best = BestK::default();
        self.knn_into(query, k, &mut best);
        best.sorted()
    }

    fn radius(&self, query: Point3, radius: f32) -> Vec<Neighbor> {
        if self.points.is_empty() {
            return Vec::new();
        }
        let r2 = radius * radius;
        let center = Self::key_of(query, self.voxel_size);
        let rings = (radius / self.voxel_size).ceil() as i32 + 1;
        let mut out: Vec<Neighbor> = Vec::new();
        for ring in 0..=rings {
            self.for_each_cell_in_ring(center, ring, |start, end| {
                kernels::scan_radius_ids(&self.soa, &self.ids, start, end, query, r2, &mut out);
            });
        }
        let len = out.len();
        finalize_candidates(out, len)
    }

    fn knn_batch(&self, queries: &[Point3], k: usize, out: &mut Neighborhoods) {
        let stride = k.min(self.points.len());
        out.reserve_rows(queries.len(), queries.len() * stride);
        if k == 0 || self.points.is_empty() {
            for _ in queries {
                out.push_row(std::iter::empty());
            }
            return;
        }
        // Morton order keeps consecutive queries in the same voxel
        // neighborhood, so the ring search touches hash cells that are
        // already cache-resident.
        batch_queries(queries, stride, out, |q, best| {
            self.knn_into(q, k, best);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::BruteForce;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn random_points(n: usize, seed: u64) -> Vec<Point3> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point3::new(
                    rng.random_range(-3.0..3.0),
                    rng.random_range(-3.0..3.0),
                    rng.random_range(-3.0..3.0),
                )
            })
            .collect()
    }

    #[test]
    fn agrees_with_brute_force() {
        let pts = random_points(600, 31);
        let grid = VoxelGrid::build(&pts, 0.75);
        let bf = BruteForce::new(&pts);
        for q in random_points(20, 37) {
            let a = grid.knn(q, 5);
            let b = bf.knn(q, 5);
            assert_eq!(
                a.iter().map(|n| n.index).collect::<Vec<_>>(),
                b.iter().map(|n| n.index).collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn radius_agrees_with_brute_force() {
        let pts = random_points(400, 41);
        let grid = VoxelGrid::build(&pts, 0.5);
        let bf = BruteForce::new(&pts);
        for q in random_points(10, 43) {
            let a = grid.radius(q, 1.2);
            let b = bf.radius(q, 1.2);
            assert_eq!(
                a.iter().map(|n| n.index).collect::<Vec<_>>(),
                b.iter().map(|n| n.index).collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn far_away_query_still_finds_neighbors() {
        let pts = random_points(100, 47);
        let grid = VoxelGrid::build(&pts, 0.5);
        let bf = BruteForce::new(&pts);
        let q = Point3::new(100.0, 100.0, 100.0);
        let a = grid.knn(q, 3);
        let b = bf.knn(q, 3);
        assert_eq!(
            a.iter().map(|n| n.index).collect::<Vec<_>>(),
            b.iter().map(|n| n.index).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn empty_and_zero_k() {
        let grid = VoxelGrid::build(&[], 1.0);
        assert!(grid.is_empty());
        assert!(grid.knn(Point3::ZERO, 2).is_empty());
        let grid = VoxelGrid::build(&[Point3::ZERO], 1.0);
        assert!(grid.knn(Point3::ZERO, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "voxel_size must be positive")]
    fn zero_voxel_size_panics() {
        let _ = VoxelGrid::build(&[Point3::ZERO], 0.0);
    }

    #[test]
    fn knn_batch_matches_per_query_loop() {
        let pts = random_points(500, 61);
        let grid = VoxelGrid::build(&pts, 0.6);
        let queries = random_points(40, 67);
        for k in [0usize, 1, 5, 600] {
            let mut batch = crate::Neighborhoods::new();
            grid.knn_batch(&queries, k, &mut batch);
            for (i, &q) in queries.iter().enumerate() {
                let expected: Vec<u32> = grid.knn(q, k).iter().map(|n| n.index as u32).collect();
                assert_eq!(batch.row(i), expected.as_slice(), "k {k} query {i}");
            }
        }
    }

    #[test]
    fn build_in_matches_fresh_build() {
        let mut grid = VoxelGrid::build(&[], 1.0);
        for seed in [71, 72] {
            let pts = random_points(300, seed);
            grid.build_in(&pts, 0.5);
            let fresh = VoxelGrid::build(&pts, 0.5);
            assert_eq!(grid.occupied_voxels(), fresh.occupied_voxels());
            for q in random_points(10, seed + 5) {
                assert_eq!(
                    grid.knn(q, 4).iter().map(|n| n.index).collect::<Vec<_>>(),
                    fresh.knn(q, 4).iter().map(|n| n.index).collect::<Vec<_>>(),
                );
            }
        }
    }

    #[test]
    fn auto_sizing_produces_reasonable_grid() {
        let pts = random_points(1000, 53);
        let grid = VoxelGrid::build_auto(&pts, 8);
        assert!(grid.voxel_size() > 0.0);
        assert!(grid.occupied_voxels() > 1);
    }
}

//! Hashed voxel-grid neighbor search.
//!
//! A uniform hash grid keyed by integer voxel coordinates. For clouds with
//! roughly uniform density it answers kNN queries by growing a ring search
//! outward from the query voxel, which makes it a good backend for the
//! colorization stage where queries are near-surface and k is tiny.

use crate::knn::{finalize_candidates, Neighbor, NeighborSearch};
use crate::point::Point3;
use std::collections::HashMap;

/// Integer voxel coordinate.
type VoxelKey = (i32, i32, i32);

/// Hashed uniform voxel grid over a fixed point set.
///
/// # Example
///
/// ```
/// use volut_pointcloud::{voxelgrid::VoxelGrid, knn::NeighborSearch, Point3};
/// let pts: Vec<Point3> = (0..64).map(|i| Point3::new((i % 4) as f32, ((i / 4) % 4) as f32, (i / 16) as f32)).collect();
/// let grid = VoxelGrid::build(&pts, 1.0);
/// assert_eq!(grid.knn(Point3::new(0.2, 0.2, 0.2), 1)[0].index, 0);
/// ```
#[derive(Debug, Clone)]
pub struct VoxelGrid {
    points: Vec<Point3>,
    voxel_size: f32,
    cells: HashMap<VoxelKey, Vec<usize>>,
}

impl VoxelGrid {
    /// Builds a voxel grid with the given voxel edge length.
    ///
    /// # Panics
    /// Panics if `voxel_size` is not strictly positive or not finite.
    pub fn build(points: &[Point3], voxel_size: f32) -> Self {
        assert!(
            voxel_size > 0.0 && voxel_size.is_finite(),
            "voxel_size must be positive and finite"
        );
        let mut cells: HashMap<VoxelKey, Vec<usize>> = HashMap::new();
        for (i, &p) in points.iter().enumerate() {
            cells
                .entry(Self::key_of(p, voxel_size))
                .or_default()
                .push(i);
        }
        Self {
            points: points.to_vec(),
            voxel_size,
            cells,
        }
    }

    /// Builds a grid whose voxel size is chosen automatically so that an
    /// average voxel holds roughly `target_per_voxel` points (assuming the
    /// cloud is surface-like). Falls back to edge length 1.0 for empty clouds.
    pub fn build_auto(points: &[Point3], target_per_voxel: usize) -> Self {
        let bounds = crate::aabb::Aabb::from_points(points.iter().copied());
        let voxel = match bounds {
            Some(b) if !points.is_empty() => {
                let area_proxy = b.longest_edge().max(1e-6);
                // Surface-like clouds fill O(L^2 / s^2) voxels of size s.
                let per_axis =
                    ((points.len() as f32 / target_per_voxel.max(1) as f32).sqrt()).max(1.0);
                (area_proxy / per_axis).max(1e-6)
            }
            _ => 1.0,
        };
        Self::build(points, voxel)
    }

    /// The voxel edge length.
    pub fn voxel_size(&self) -> f32 {
        self.voxel_size
    }

    /// Number of occupied voxels.
    pub fn occupied_voxels(&self) -> usize {
        self.cells.len()
    }

    /// The indexed points.
    pub fn points(&self) -> &[Point3] {
        &self.points
    }

    fn key_of(p: Point3, s: f32) -> VoxelKey {
        (
            (p.x / s).floor() as i32,
            (p.y / s).floor() as i32,
            (p.z / s).floor() as i32,
        )
    }

    /// Collects candidates from every voxel within `ring` voxels (Chebyshev
    /// distance) of the query's voxel.
    fn collect_ring(&self, center: VoxelKey, ring: i32, out: &mut Vec<usize>) {
        for dx in -ring..=ring {
            for dy in -ring..=ring {
                for dz in -ring..=ring {
                    // Only the shell of the ring: inner voxels were already collected.
                    if dx.abs().max(dy.abs()).max(dz.abs()) != ring {
                        continue;
                    }
                    if let Some(v) = self
                        .cells
                        .get(&(center.0 + dx, center.1 + dy, center.2 + dz))
                    {
                        out.extend_from_slice(v);
                    }
                }
            }
        }
    }
}

impl NeighborSearch for VoxelGrid {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn knn(&self, query: Point3, k: usize) -> Vec<Neighbor> {
        if k == 0 || self.points.is_empty() {
            return Vec::new();
        }
        let center = Self::key_of(query, self.voxel_size);
        let mut candidate_ids: Vec<usize> = Vec::new();
        let mut ring = 0i32;
        // Expand rings until we have enough candidates AND the next ring can
        // no longer contain a closer point than the current k-th best.
        loop {
            self.collect_ring(center, ring, &mut candidate_ids);
            let enough = candidate_ids.len() >= k;
            if enough {
                let mut cands: Vec<Neighbor> = candidate_ids
                    .iter()
                    .map(|&i| Neighbor {
                        index: i,
                        distance_squared: self.points[i].distance_squared(query),
                    })
                    .collect();
                cands = finalize_candidates(cands, k);
                // Any point in ring r+1 is at least r * voxel_size away from
                // the query (conservative lower bound).
                let safe_radius = ring as f32 * self.voxel_size;
                if cands.len() == k
                    && cands[cands.len() - 1].distance_squared <= safe_radius * safe_radius
                {
                    return cands;
                }
            }
            ring += 1;
            // Bail out when the search has covered the whole cloud extent.
            if ring > 1 + (self.points.len() as f32).cbrt() as i32 + 64 {
                let cands: Vec<Neighbor> = candidate_ids
                    .iter()
                    .map(|&i| Neighbor {
                        index: i,
                        distance_squared: self.points[i].distance_squared(query),
                    })
                    .collect();
                if candidate_ids.len() >= self.points.len() {
                    return finalize_candidates(cands, k);
                }
                // Fall back to scanning everything (correctness over speed).
                let all: Vec<Neighbor> = self
                    .points
                    .iter()
                    .enumerate()
                    .map(|(i, &p)| Neighbor {
                        index: i,
                        distance_squared: p.distance_squared(query),
                    })
                    .collect();
                return finalize_candidates(all, k);
            }
        }
    }

    fn radius(&self, query: Point3, radius: f32) -> Vec<Neighbor> {
        if self.points.is_empty() {
            return Vec::new();
        }
        let r2 = radius * radius;
        let center = Self::key_of(query, self.voxel_size);
        let rings = (radius / self.voxel_size).ceil() as i32 + 1;
        let mut ids = Vec::new();
        for ring in 0..=rings {
            self.collect_ring(center, ring, &mut ids);
        }
        let out: Vec<Neighbor> = ids
            .into_iter()
            .filter_map(|i| {
                let d2 = self.points[i].distance_squared(query);
                (d2 <= r2).then_some(Neighbor {
                    index: i,
                    distance_squared: d2,
                })
            })
            .collect();
        let len = out.len();
        finalize_candidates(out, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::BruteForce;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn random_points(n: usize, seed: u64) -> Vec<Point3> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point3::new(
                    rng.random_range(-3.0..3.0),
                    rng.random_range(-3.0..3.0),
                    rng.random_range(-3.0..3.0),
                )
            })
            .collect()
    }

    #[test]
    fn agrees_with_brute_force() {
        let pts = random_points(600, 31);
        let grid = VoxelGrid::build(&pts, 0.75);
        let bf = BruteForce::new(&pts);
        for q in random_points(20, 37) {
            let a = grid.knn(q, 5);
            let b = bf.knn(q, 5);
            assert_eq!(
                a.iter().map(|n| n.index).collect::<Vec<_>>(),
                b.iter().map(|n| n.index).collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn radius_agrees_with_brute_force() {
        let pts = random_points(400, 41);
        let grid = VoxelGrid::build(&pts, 0.5);
        let bf = BruteForce::new(&pts);
        for q in random_points(10, 43) {
            let a = grid.radius(q, 1.2);
            let b = bf.radius(q, 1.2);
            assert_eq!(
                a.iter().map(|n| n.index).collect::<Vec<_>>(),
                b.iter().map(|n| n.index).collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn far_away_query_still_finds_neighbors() {
        let pts = random_points(100, 47);
        let grid = VoxelGrid::build(&pts, 0.5);
        let bf = BruteForce::new(&pts);
        let q = Point3::new(100.0, 100.0, 100.0);
        let a = grid.knn(q, 3);
        let b = bf.knn(q, 3);
        assert_eq!(
            a.iter().map(|n| n.index).collect::<Vec<_>>(),
            b.iter().map(|n| n.index).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn empty_and_zero_k() {
        let grid = VoxelGrid::build(&[], 1.0);
        assert!(grid.is_empty());
        assert!(grid.knn(Point3::ZERO, 2).is_empty());
        let grid = VoxelGrid::build(&[Point3::ZERO], 1.0);
        assert!(grid.knn(Point3::ZERO, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "voxel_size must be positive")]
    fn zero_voxel_size_panics() {
        let _ = VoxelGrid::build(&[Point3::ZERO], 0.0);
    }

    #[test]
    fn auto_sizing_produces_reasonable_grid() {
        let pts = random_points(1000, 53);
        let grid = VoxelGrid::build_auto(&pts, 8);
        assert!(grid.voxel_size() > 0.0);
        assert!(grid.occupied_voxels() > 1);
    }
}

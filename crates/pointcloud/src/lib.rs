//! # volut-pointcloud
//!
//! Point-cloud substrate for the VoLUT volumetric-streaming reproduction.
//!
//! This crate provides everything below the super-resolution algorithm:
//! geometric primitives ([`Point3`], [`Aabb`]), the [`PointCloud`] container,
//! neighbor-search backends (brute force, k-d tree, two-layer octree, voxel
//! grid), sampling operators (random, voxel, farthest-point), quality metrics
//! (Chamfer distance, PSNR), procedural synthetic content generators used in
//! place of the paper's captured videos, and a small binary/PLY I/O layer.
//!
//! # Example
//!
//! ```
//! use volut_pointcloud::{synthetic, sampling, metrics, knn::NeighborSearch, kdtree::KdTree};
//!
//! # fn main() -> Result<(), volut_pointcloud::Error> {
//! // Generate a synthetic torus surface with colors.
//! let cloud = synthetic::torus(5_000, 1.0, 0.35, 42);
//! // Randomly downsample to half the points (the paper's server-side operator).
//! let low = sampling::random_downsample(&cloud, 0.5, 7)?;
//! // Build a k-d tree and query neighbors.
//! let tree = KdTree::build(low.positions());
//! let nn = tree.knn(cloud.positions()[0], 4);
//! assert_eq!(nn.len(), 4);
//! // Measure how much geometry was lost.
//! let cd = metrics::chamfer_distance(&low, &cloud);
//! assert!(cd > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aabb;
pub mod cloud;
pub mod delta;
pub mod dualtree;
pub mod error;
pub mod io;
pub mod kdtree;
pub mod kernels;
pub mod knn;
pub mod metrics;
pub mod neighborhoods;
pub mod octree;
pub mod par;
pub mod point;
pub mod runtime;
pub mod sampling;
pub mod soa;
pub mod synthetic;
pub mod voxelgrid;

pub use aabb::Aabb;
pub use cloud::PointCloud;
pub use delta::{DeltaError, FrameDelta};
pub use error::Error;
pub use neighborhoods::{Neighborhoods, NeighborhoodsView};
pub use point::{Color, Point3};

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

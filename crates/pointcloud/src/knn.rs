//! Nearest-neighbor search abstractions and the brute-force baseline.
//!
//! All spatial indices in this crate ([`crate::kdtree::KdTree`],
//! [`crate::octree::TwoLayerOctree`], [`crate::voxelgrid::VoxelGrid`])
//! implement the [`NeighborSearch`] trait so the super-resolution pipeline
//! can swap backends; the brute-force implementation here is the reference
//! oracle the property tests compare against.
//!
//! The trait is **batch-first**: [`NeighborSearch::knn_batch`] answers a
//! whole slice of queries into a flat CSR [`Neighborhoods`] container with
//! zero per-query allocation. The tuned backends share candidate/best-list
//! scratch and traversal stacks across the queries of one batch, which is
//! what the SR interpolation hot path consumes; the per-query
//! [`NeighborSearch::knn`] remains for one-off lookups and as the oracle
//! the batch parity tests compare against.

use crate::neighborhoods::Neighborhoods;
use crate::point::Point3;

/// A single neighbor returned by a kNN query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index of the neighbor in the indexed point set.
    pub index: usize,
    /// Squared Euclidean distance from the query point.
    pub distance_squared: f32,
}

impl Neighbor {
    /// Euclidean (non-squared) distance from the query point.
    #[inline]
    pub fn distance(&self) -> f32 {
        self.distance_squared.sqrt()
    }
}

/// Common interface for k-nearest-neighbor backends.
///
/// Implementations index a fixed point set at construction time and answer
/// `knn` / `radius` queries against it. Results are sorted by increasing
/// distance and ties are broken by index so all backends agree exactly.
pub trait NeighborSearch: Send + Sync {
    /// Number of points indexed by this structure.
    fn len(&self) -> usize;

    /// Returns `true` when no points are indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the `k` nearest neighbors of `query`, sorted by increasing
    /// distance (then index). Returns fewer than `k` entries when the indexed
    /// set is smaller than `k`; returns an empty vector when `k == 0`.
    fn knn(&self, query: Point3, k: usize) -> Vec<Neighbor>;

    /// Returns all indexed points within `radius` of `query`, sorted by
    /// increasing distance (then index).
    fn radius(&self, query: Point3, radius: f32) -> Vec<Neighbor>;

    /// Answers one kNN query per element of `queries`, **appending** one row
    /// of neighbor indices (sorted by increasing distance, ties broken by
    /// index) per query to `out`.
    ///
    /// Rows mirror [`NeighborSearch::knn`] exactly: row `i` holds the same
    /// indices, in the same order, as `self.knn(queries[i], k)` — including
    /// the shorter-than-`k` rows of small clouds and the empty rows of
    /// `k == 0` or an empty index. The default implementation delegates to
    /// the per-query path; the tuned backends override it with
    /// shared-scratch implementations that allocate nothing per query.
    fn knn_batch(&self, queries: &[Point3], k: usize, out: &mut Neighborhoods) {
        out.reserve_rows(queries.len(), queries.len() * k.min(self.len()));
        for &q in queries {
            let nn = self.knn(q, k);
            out.push_row(nn.into_iter().map(|n| n.index));
        }
    }
}

/// Sorts neighbor candidates by `(distance, index)` and truncates to `k`.
pub(crate) fn finalize_candidates(mut cands: Vec<Neighbor>, k: usize) -> Vec<Neighbor> {
    cands.sort_by(|a, b| {
        a.distance_squared
            .total_cmp(&b.distance_squared)
            .then(a.index.cmp(&b.index))
    });
    cands.truncate(k);
    cands
}

/// Bounded best-`k` accumulator shared by every backend's kNN kernel.
///
/// Entries stay *unsorted* while a query runs: a candidate either appends
/// (until `k` entries exist) or replaces the current worst, after which the
/// new worst is found with one linear rescan — far cheaper at the small `k`
/// of the SR pipeline than a sorted insert's binary search plus memmove on
/// every improvement. The tracked worst is the maximum by
/// `(distance, index)`, so distance ties are broken by smaller index
/// exactly like the sorted formulation, independent of visit order; the
/// surviving set — and after [`BestK::sorted`], the emitted order — is
/// identical for every traversal order.
#[derive(Debug, Default)]
pub(crate) struct BestK {
    entries: Vec<Neighbor>,
    k: usize,
    /// Position of the worst entry (by `(distance, index)`), valid when
    /// `entries.len() == k`.
    worst: usize,
}

impl BestK {
    /// Starts a new query wanting `k` neighbors (allocation reused).
    #[inline]
    pub(crate) fn begin(&mut self, k: usize) {
        self.entries.clear();
        self.k = k;
        self.worst = 0;
    }

    /// Squared distance of the current worst entry; `INFINITY` until `k`
    /// entries exist, so `bound > worst_d2()` is the universal prune test
    /// (and passes equality through for index-broken ties).
    #[inline]
    pub(crate) fn worst_d2(&self) -> f32 {
        if self.entries.len() == self.k {
            self.entries[self.worst].distance_squared
        } else {
            f32::INFINITY
        }
    }

    /// Offers a candidate.
    #[inline(always)]
    pub(crate) fn push(&mut self, index: usize, d2: f32) {
        debug_assert!(self.k > 0, "callers early-out on k == 0");
        if self.entries.len() < self.k {
            self.entries.push(Neighbor {
                index,
                distance_squared: d2,
            });
            if self.entries.len() == self.k {
                self.refind_worst();
            }
            return;
        }
        let w = self.entries[self.worst];
        if d2 > w.distance_squared || (d2 == w.distance_squared && index > w.index) {
            return;
        }
        self.entries[self.worst] = Neighbor {
            index,
            distance_squared: d2,
        };
        self.refind_worst();
    }

    #[inline]
    fn refind_worst(&mut self) {
        let mut w = 0;
        for i in 1..self.entries.len() {
            let a = self.entries[i];
            let b = self.entries[w];
            if a.distance_squared > b.distance_squared
                || (a.distance_squared == b.distance_squared && a.index > b.index)
            {
                w = i;
            }
        }
        self.worst = w;
    }

    /// Sorts the entries by `(distance, index)` and returns them.
    pub(crate) fn sorted(&mut self) -> &[Neighbor] {
        self.entries.sort_unstable_by(|a, b| {
            a.distance_squared
                .total_cmp(&b.distance_squared)
                .then(a.index.cmp(&b.index))
        });
        self.worst = self.entries.len().saturating_sub(1);
        &self.entries
    }
}

/// Batches below this size skip the Morton reorder: the locality win cannot
/// amortize the sort.
pub(crate) const REORDER_MIN_QUERIES: usize = 1024;

/// Expands the low 10 bits of `v` so they occupy every third bit.
#[inline]
fn expand_bits_10(v: u32) -> u32 {
    let mut x = v & 0x3FF;
    x = (x | (x << 16)) & 0x0300_00FF;
    x = (x | (x << 8)) & 0x0300_F00F;
    x = (x | (x << 4)) & 0x030C_30C3;
    x = (x | (x << 2)) & 0x0924_9249;
    x
}

/// 30-bit Morton code of `p` quantized to a 1024³ grid over `[min, max]`.
#[inline]
fn morton_code(p: Point3, min: Point3, inv_extent: Point3) -> u32 {
    let q = |v: f32, lo: f32, inv: f32| -> u32 {
        let t = ((v - lo) * inv).clamp(0.0, 1023.0);
        // NaN clamps to 0 via the comparison chain below.
        if t.is_finite() {
            t as u32
        } else {
            0
        }
    };
    expand_bits_10(q(p.x, min.x, inv_extent.x))
        | (expand_bits_10(q(p.y, min.y, inv_extent.y)) << 1)
        | (expand_bits_10(q(p.z, min.z, inv_extent.z)) << 2)
}

/// Morton-bucket ordering of a query batch: returns `(visit, codes)` where
/// `visit` lists query indices grouped by spatial bucket (one linear
/// counting sort over the top `bucket_bits` of each query's Morton code)
/// and `codes[i]` is query `i`'s bucket id. Grouping at this granularity
/// captures the locality that matters (buckets are finer than the index
/// regions whose cache reuse pays) at a fraction of a full sort's cost.
pub(crate) fn morton_buckets(queries: &[Point3], bucket_bits: u32) -> (Vec<u32>, Vec<u32>) {
    debug_assert!((1..=30).contains(&bucket_bits));
    let mut min = Point3::splat(f32::INFINITY);
    let mut max = Point3::splat(f32::NEG_INFINITY);
    for &q in queries {
        min = min.min(q);
        max = max.max(q);
    }
    let ext = max - min;
    let inv = Point3::new(
        if ext.x > 0.0 { 1024.0 / ext.x } else { 0.0 },
        if ext.y > 0.0 { 1024.0 / ext.y } else { 0.0 },
        if ext.z > 0.0 { 1024.0 / ext.z } else { 0.0 },
    );
    let codes: Vec<u32> = queries
        .iter()
        .map(|&q| morton_code(q, min, inv) >> (30 - bucket_bits))
        .collect();
    let mut bucket_starts = vec![0u32; (1usize << bucket_bits) + 1];
    for &c in &codes {
        bucket_starts[c as usize + 1] += 1;
    }
    for b in 1..bucket_starts.len() {
        bucket_starts[b] += bucket_starts[b - 1];
    }
    let mut visit: Vec<u32> = vec![0; queries.len()];
    for (i, &c) in codes.iter().enumerate() {
        let slot = &mut bucket_starts[c as usize];
        visit[*slot as usize] = i as u32;
        *slot += 1;
    }
    (visit, codes)
}

/// Drives a batched kNN sweep: runs `query_fn` once per query (filling a
/// best list of exactly `stride = k.min(indexed_len)` entries) and appends
/// one CSR row per query to `out`, in query order.
///
/// Large batches are processed in Morton order — spatially adjacent queries
/// walk near-identical index regions, so the index's working set stays
/// cache-resident between consecutive queries instead of being re-fetched
/// for every random-order query. Results land in a fixed-stride scratch
/// (exact kNN rows all have `stride` entries) and are emitted in the
/// caller's original order, so the reordering is invisible in the output:
/// every backend's candidates flow through [`push_best`], making results
/// independent of visit order even under distance ties.
pub(crate) fn batch_queries(
    queries: &[Point3],
    stride: usize,
    out: &mut Neighborhoods,
    mut query_fn: impl FnMut(Point3, &mut BestK),
) {
    let mut best = BestK::default();
    if queries.len() < REORDER_MIN_QUERIES {
        for &q in queries {
            query_fn(q, &mut best);
            out.push_row_u32_iter(best.sorted().iter().map(|n| n.index as u32));
        }
        return;
    }
    let (visit, _codes) = morton_buckets(queries, 15);
    // Rows are written sequentially in visit order (streaming stores), then
    // gathered back into query order at emit time via the inverse
    // permutation — cheaper than scattering row writes across the buffer.
    let mut rows: Vec<u32> = Vec::with_capacity(queries.len() * stride);
    let mut visit_pos = vec![0u32; queries.len()];
    for (pos, &qi) in visit.iter().enumerate() {
        visit_pos[qi as usize] = pos as u32;
        query_fn(queries[qi as usize], &mut best);
        let row = best.sorted();
        debug_assert_eq!(row.len(), stride, "exact kNN rows are stride-uniform");
        rows.extend(row.iter().map(|n| n.index as u32));
    }
    for &pos in &visit_pos {
        let start = pos as usize * stride;
        out.push_row_u32(&rows[start..start + stride]);
    }
}

/// Brute-force exact kNN over a point slice.
///
/// O(n) per query; used as the correctness oracle and for very small clouds
/// where building an index is not worthwhile.
///
/// # Example
///
/// ```
/// use volut_pointcloud::{knn::{BruteForce, NeighborSearch}, Point3};
/// let pts = vec![Point3::new(0.0, 0.0, 0.0), Point3::new(1.0, 0.0, 0.0), Point3::new(5.0, 0.0, 0.0)];
/// let bf = BruteForce::new(&pts);
/// let nn = bf.knn(Point3::new(0.9, 0.0, 0.0), 2);
/// assert_eq!(nn[0].index, 1);
/// assert_eq!(nn[1].index, 0);
/// ```
#[derive(Debug, Clone)]
pub struct BruteForce {
    points: Vec<Point3>,
}

impl BruteForce {
    /// Indexes (copies) the given points.
    pub fn new(points: &[Point3]) -> Self {
        Self {
            points: points.to_vec(),
        }
    }

    /// The indexed points.
    pub fn points(&self) -> &[Point3] {
        &self.points
    }
}

impl NeighborSearch for BruteForce {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn knn(&self, query: Point3, k: usize) -> Vec<Neighbor> {
        if k == 0 || self.points.is_empty() {
            return Vec::new();
        }
        // Bounded replace-max accumulator: for the small k used by the SR
        // pipeline (k <= 32) this beats both a BinaryHeap and sorted inserts.
        let mut best = BestK::default();
        best.begin(k);
        for (index, &p) in self.points.iter().enumerate() {
            let d2 = p.distance_squared(query);
            best.push(index, d2);
        }
        best.sorted().to_vec()
    }

    fn radius(&self, query: Point3, radius: f32) -> Vec<Neighbor> {
        let r2 = radius * radius;
        let cands = self
            .points
            .iter()
            .enumerate()
            .filter_map(|(index, &p)| {
                let d2 = p.distance_squared(query);
                (d2 <= r2).then_some(Neighbor {
                    index,
                    distance_squared: d2,
                })
            })
            .collect::<Vec<_>>();
        let len = cands.len();
        finalize_candidates(cands, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points() -> Vec<Point3> {
        let mut pts = Vec::new();
        for x in 0..4 {
            for y in 0..4 {
                for z in 0..4 {
                    pts.push(Point3::new(x as f32, y as f32, z as f32));
                }
            }
        }
        pts
    }

    #[test]
    fn knn_returns_sorted_results() {
        let pts = grid_points();
        let bf = BruteForce::new(&pts);
        let nn = bf.knn(Point3::new(0.1, 0.1, 0.1), 5);
        assert_eq!(nn.len(), 5);
        for w in nn.windows(2) {
            assert!(w[0].distance_squared <= w[1].distance_squared);
        }
        assert_eq!(nn[0].index, 0);
    }

    #[test]
    fn knn_k_zero_and_empty() {
        let bf = BruteForce::new(&[]);
        assert!(bf.knn(Point3::ZERO, 3).is_empty());
        assert!(bf.is_empty());
        let bf = BruteForce::new(&[Point3::ZERO]);
        assert!(bf.knn(Point3::ZERO, 0).is_empty());
    }

    #[test]
    fn knn_more_than_available() {
        let bf = BruteForce::new(&[Point3::ZERO, Point3::ONE]);
        let nn = bf.knn(Point3::ZERO, 10);
        assert_eq!(nn.len(), 2);
    }

    #[test]
    fn radius_query_filters_correctly() {
        let pts = grid_points();
        let bf = BruteForce::new(&pts);
        let within = bf.radius(Point3::new(0.0, 0.0, 0.0), 1.0);
        // Origin plus its three axis neighbors at distance exactly 1.
        assert_eq!(within.len(), 4);
        assert_eq!(within[0].index, 0);
        assert_eq!(within[0].distance_squared, 0.0);
    }

    #[test]
    fn neighbor_distance_accessor() {
        let n = Neighbor {
            index: 0,
            distance_squared: 4.0,
        };
        assert_eq!(n.distance(), 2.0);
    }

    #[test]
    fn default_knn_batch_matches_per_query_loop() {
        let pts = grid_points();
        let bf = BruteForce::new(&pts);
        let queries = vec![
            Point3::new(0.1, 0.1, 0.1),
            Point3::new(3.9, 3.9, 3.9),
            Point3::new(-5.0, 0.0, 0.0),
        ];
        let mut batch = Neighborhoods::new();
        bf.knn_batch(&queries, 5, &mut batch);
        assert_eq!(batch.len(), queries.len());
        for (i, &q) in queries.iter().enumerate() {
            let expected: Vec<u32> = bf.knn(q, 5).iter().map(|n| n.index as u32).collect();
            assert_eq!(batch.row(i), expected.as_slice(), "query {i}");
        }
        // Appending semantics: a second batch extends the container.
        bf.knn_batch(&queries[..1], 2, &mut batch);
        assert_eq!(batch.len(), queries.len() + 1);
        assert_eq!(batch.row(3).len(), 2);
    }

    #[test]
    fn knn_batch_edge_cases() {
        let empty = BruteForce::new(&[]);
        let mut out = Neighborhoods::new();
        empty.knn_batch(&[Point3::ZERO, Point3::ONE], 3, &mut out);
        assert_eq!(out.len(), 2);
        assert!(out.row(0).is_empty() && out.row(1).is_empty());

        let two = BruteForce::new(&[Point3::ZERO, Point3::ONE]);
        let mut out = Neighborhoods::new();
        // k = 0 appends empty rows; k > len returns all points.
        two.knn_batch(&[Point3::ZERO], 0, &mut out);
        two.knn_batch(&[Point3::ZERO], 10, &mut out);
        assert_eq!(out.len(), 2);
        assert!(out.row(0).is_empty());
        assert_eq!(out.row(1), &[0, 1]);
    }

    #[test]
    fn ties_broken_by_index() {
        let pts = vec![
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(-1.0, 0.0, 0.0),
            Point3::new(0.0, 1.0, 0.0),
        ];
        let bf = BruteForce::new(&pts);
        let nn = bf.knn(Point3::ZERO, 3);
        assert_eq!(
            nn.iter().map(|n| n.index).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }
}

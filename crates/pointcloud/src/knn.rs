//! Nearest-neighbor search abstractions and the brute-force baseline.
//!
//! All spatial indices in this crate ([`crate::kdtree::KdTree`],
//! [`crate::octree::TwoLayerOctree`], [`crate::voxelgrid::VoxelGrid`])
//! implement the [`NeighborSearch`] trait so the super-resolution pipeline
//! can swap backends; the brute-force implementation here is the reference
//! oracle the property tests compare against.
//!
//! The trait is **batch-first**: [`NeighborSearch::knn_batch`] answers a
//! whole slice of queries into a flat CSR [`Neighborhoods`] container with
//! zero per-query allocation. The tuned backends share candidate/best-list
//! scratch and traversal stacks across the queries of one batch, which is
//! what the SR interpolation hot path consumes; the per-query
//! [`NeighborSearch::knn`] remains for one-off lookups and as the oracle
//! the batch parity tests compare against.
//!
//! The k-d tree backend additionally selects between **two batch
//! algorithms** inside `knn_batch` (see [`crate::dualtree`] for the policy
//! details and how to force either):
//! * the *single-tree* sweep — one warm-started traversal per query, in
//!   Morton order with shared scratch (this module's `batch_queries`
//!   driver); chosen for small batches and large `k`;
//! * the *dual-tree* leaf-pair traversal — a tree over the queries is
//!   walked against the reference tree so whole (query-leaf,
//!   reference-node) pairs are pruned with one AABB–AABB distance test,
//!   and surviving leaf pairs run tile-vs-tile candidate scans; chosen
//!   automatically for large batches (and for free on *self-joins*, where
//!   the query tree **is** the reference tree), the regime where the SR
//!   interpolators issue their frame-dominating kNN self-queries.
//!
//! Both algorithms produce bit-identical rows — the same packed
//! `(distance, index)` key ordering decides survivors and ties everywhere —
//! so the selection is invisible in the output.

use crate::neighborhoods::Neighborhoods;
use crate::point::Point3;

/// A single neighbor returned by a kNN query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index of the neighbor in the indexed point set.
    pub index: usize,
    /// Squared Euclidean distance from the query point.
    pub distance_squared: f32,
}

impl Neighbor {
    /// Euclidean (non-squared) distance from the query point.
    #[inline]
    pub fn distance(&self) -> f32 {
        self.distance_squared.sqrt()
    }
}

/// Common interface for k-nearest-neighbor backends.
///
/// Implementations index a fixed point set at construction time and answer
/// `knn` / `radius` queries against it. Results are sorted by increasing
/// distance and ties are broken by index so all backends agree exactly.
pub trait NeighborSearch: Send + Sync {
    /// Number of points indexed by this structure.
    fn len(&self) -> usize;

    /// Returns `true` when no points are indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the `k` nearest neighbors of `query`, sorted by increasing
    /// distance (then index). Returns fewer than `k` entries when the indexed
    /// set is smaller than `k`; returns an empty vector when `k == 0`.
    fn knn(&self, query: Point3, k: usize) -> Vec<Neighbor>;

    /// Returns all indexed points within `radius` of `query`, sorted by
    /// increasing distance (then index).
    fn radius(&self, query: Point3, radius: f32) -> Vec<Neighbor>;

    /// Answers one kNN query per element of `queries`, **appending** one row
    /// of neighbor indices (sorted by increasing distance, ties broken by
    /// index) per query to `out`.
    ///
    /// Rows mirror [`NeighborSearch::knn`] exactly: row `i` holds the same
    /// indices, in the same order, as `self.knn(queries[i], k)` — including
    /// the shorter-than-`k` rows of small clouds and the empty rows of
    /// `k == 0` or an empty index. The default implementation delegates to
    /// the per-query path; the tuned backends override it with
    /// shared-scratch implementations that allocate nothing per query.
    fn knn_batch(&self, queries: &[Point3], k: usize, out: &mut Neighborhoods) {
        out.reserve_rows(queries.len(), queries.len() * k.min(self.len()));
        for &q in queries {
            let nn = self.knn(q, k);
            out.push_row(nn.into_iter().map(|n| n.index));
        }
    }
}

/// Sorts neighbor candidates by `(distance, index)` and truncates to `k`.
pub(crate) fn finalize_candidates(mut cands: Vec<Neighbor>, k: usize) -> Vec<Neighbor> {
    cands.sort_by(|a, b| {
        a.distance_squared
            .total_cmp(&b.distance_squared)
            .then(a.index.cmp(&b.index))
    });
    cands.truncate(k);
    cands
}

/// Bounded best-`k` accumulator shared by every backend's kNN kernel.
///
/// The candidate list is a sorted array of packed `u64` keys (see the
/// `keys` field): at the SR pipeline's single-digit `k` a branchless rank
/// scan plus a sub-cache-line shift beats both a heap and a replace-max
/// rescan, and it leaves the result ready to emit with **no per-query
/// sort**. Ordering by the packed key is ordering by `(distance, index)`,
/// so distance ties are broken by smaller index exactly like the seed's
/// sorted formulation, and the surviving set — and emitted order — is
/// identical for every traversal order.
#[derive(Debug)]
pub(crate) struct BestK {
    /// Packed candidates: high 32 bits are the squared distance's IEEE bits,
    /// low 32 the point index. Squared distances are never negative (each
    /// term is a square, `-0.0 * -0.0 == +0.0`), so the unsigned `u64`
    /// ordering is *exactly* the `(distance, index)` ordering — one compare
    /// replaces the two-field tie-break chain, and NaN distances sort after
    /// `+inf` just like `f32::total_cmp`. Unsorted while a query runs.
    keys: Vec<u64>,
    /// Position of entry `i` in the indexed point set, parallel to `keys`
    /// while a query runs (out of date after [`BestK::sorted_keys`], which
    /// only reorders `keys`); a fixed array so cold queries pay no
    /// allocation for it. Entries beyond [`WARM_TRACK`] are untracked —
    /// [`BestK::begin_warm`] then simply starts cold.
    positions: [Point3; WARM_TRACK],
    k: usize,
    /// Pruning cap: a proven upper bound on the final k-th squared distance
    /// (see [`BestK::begin_warm`]); `INFINITY` for unseeded queries.
    cap: f32,
}

/// How many result positions [`BestK`] tracks for warm starts; queries with
/// `k` beyond this run cold (the SR pipeline's `k` is single-digit).
const WARM_TRACK: usize = 32;

impl Default for BestK {
    fn default() -> Self {
        Self {
            keys: Vec::new(),
            positions: [Point3::ZERO; WARM_TRACK],
            k: 0,
            cap: f32::INFINITY,
        }
    }
}

/// Packs `(d2, index)` into the order-preserving `u64` key.
#[inline(always)]
pub(crate) fn pack_key(index: usize, d2: f32) -> u64 {
    (u64::from(d2.to_bits()) << 32) | index as u64
}

/// Unpacks a key back into a [`Neighbor`] (exact `f32` bit roundtrip).
#[inline(always)]
fn unpack_key(key: u64) -> Neighbor {
    Neighbor {
        index: key as u32 as usize,
        distance_squared: f32::from_bits((key >> 32) as u32),
    }
}

impl BestK {
    /// Starts a new query wanting `k` neighbors (allocation reused).
    #[inline]
    pub(crate) fn begin(&mut self, k: usize) {
        self.keys.clear();
        self.k = k;
        self.cap = f32::INFINITY;
    }

    /// Starts a new query wanting `k` neighbors, warm-started from the
    /// accumulator's *previous* query: the largest squared distance from
    /// `query` to the previous result's points is a true upper bound on this
    /// query's final k-th distance (they are `k` distinct indexed points —
    /// or the entire cloud when it holds fewer than `k`), so it becomes the
    /// initial pruning cap. The batched sweeps visit queries in Morton
    /// order, making consecutive queries spatial neighbors and the cap
    /// tight from the very first node.
    ///
    /// The cap makes [`BestK::worst_d2`] — and therefore every traversal
    /// prune and scan filter built on it — tight before `k` candidates have
    /// been found. Results are **identical** to a cold query: a region or
    /// candidate is only skipped when strictly beyond the cap, and anything
    /// strictly beyond an upper bound of the k-th distance cannot appear in
    /// the result (ties at the cap still pass and are index-broken by
    /// [`BestK::push`] as usual). Callers must reuse one accumulator per
    /// (index, `k`) sweep — a fresh [`BestK`] starts cold.
    #[inline]
    pub(crate) fn begin_warm(&mut self, k: usize, query: Point3) {
        let mut cap = f32::NEG_INFINITY;
        // The previous entries are a valid bound source only if they were a
        // complete result row for the same `k` with every position tracked.
        if self.k == k && self.keys.len() <= WARM_TRACK {
            for p in &self.positions[..self.keys.len()] {
                cap = cap.max(p.distance_squared(query));
            }
        }
        self.begin(k);
        if cap.is_finite() {
            self.cap = cap;
        }
    }

    /// Squared distance of the current worst entry; until `k` entries exist
    /// this is the warm-start cap (`INFINITY` when cold), so
    /// `bound > worst_d2()` is the universal prune test (and passes equality
    /// through for index-broken ties).
    #[inline]
    pub(crate) fn worst_d2(&self) -> f32 {
        if self.keys.len() == self.k {
            f32::from_bits((self.keys[self.k - 1] >> 32) as u32)
        } else {
            self.cap
        }
    }

    /// `true` once `k` entries are held. Termination tests that *stop a
    /// search* (rather than prune a region) must check this alongside
    /// [`BestK::worst_d2`]: before the list is full, `worst_d2` is the
    /// warm-start cap, which bounds the final result but does not promise
    /// the remaining entries have been seen yet.
    #[inline]
    pub(crate) fn is_full(&self) -> bool {
        self.keys.len() == self.k
    }

    /// Offers a candidate at position `pos`.
    ///
    /// The key list is kept *sorted* at all times: an accepted candidate is
    /// placed by a branchless fixed-trip rank scan (count of smaller keys —
    /// the trip count is the predictable `len`, not the data) plus one tiny
    /// `copy_within` shift. Keeping the list sorted makes the worst entry
    /// `keys[len - 1]`, removes the replace-max rescan, and turns result
    /// emission into a plain borrow — there is no per-query sort at all.
    #[inline(always)]
    pub(crate) fn push(&mut self, index: usize, d2: f32, pos: Point3) {
        debug_assert!(self.k > 0, "callers early-out on k == 0");
        let key = pack_key(index, d2);
        let len = self.keys.len();
        if len == self.k {
            if key >= self.keys[len - 1] {
                return;
            }
            let rank = self.rank_of(key);
            self.keys.copy_within(rank..len - 1, rank + 1);
            self.keys[rank] = key;
            self.insert_position(rank, len, pos);
            return;
        }
        let rank = self.rank_of(key);
        self.keys.insert(rank, key);
        self.insert_position(rank, len + 1, pos);
    }

    /// Number of stored keys strictly smaller than `key` (the insertion
    /// rank). A fixed-trip sum of compares — no data-dependent branches.
    #[inline(always)]
    fn rank_of(&self, key: u64) -> usize {
        self.keys.iter().map(|&a| usize::from(a < key)).sum()
    }

    /// Mirrors an insertion of `pos` at `rank` into the parallel positions
    /// array (`new_len` tracked entries after the insertion, capped at
    /// [`WARM_TRACK`]).
    #[inline(always)]
    fn insert_position(&mut self, rank: usize, new_len: usize, pos: Point3) {
        if rank < WARM_TRACK {
            let upto = new_len.min(WARM_TRACK);
            self.positions.copy_within(rank..upto - 1, rank + 1);
            self.positions[rank] = pos;
        }
    }

    /// The packed keys, sorted by `(distance, index)`; the low 32 bits of
    /// each key are the neighbor index, which is all the batched CSR
    /// emission needs (no unpacking, no sort — the list is always sorted).
    pub(crate) fn sorted_keys(&mut self) -> &[u64] {
        &self.keys
    }

    /// Unpacks the (already sorted) entries — the per-query convenience path.
    pub(crate) fn sorted(&mut self) -> Vec<Neighbor> {
        self.keys.iter().map(|&k| unpack_key(k)).collect()
    }
}

impl crate::kernels::ScanSink for BestK {
    #[inline(always)]
    fn worst_d2(&self) -> f32 {
        BestK::worst_d2(self)
    }

    #[inline(always)]
    fn push(&mut self, index: usize, d2: f32, pos: Point3) {
        BestK::push(self, index, d2, pos);
    }
}

/// Batches below this size skip the Morton reorder: the locality win cannot
/// amortize the sort.
pub(crate) const REORDER_MIN_QUERIES: usize = 1024;

/// Expands the low 10 bits of `v` so they occupy every third bit.
#[inline]
fn expand_bits_10(v: u32) -> u32 {
    let mut x = v & 0x3FF;
    x = (x | (x << 16)) & 0x0300_00FF;
    x = (x | (x << 8)) & 0x0300_F00F;
    x = (x | (x << 4)) & 0x030C_30C3;
    x = (x | (x << 2)) & 0x0924_9249;
    x
}

/// 30-bit Morton code of `p` quantized to a 1024³ grid over `[min, max]`.
/// Shared with the k-d tree's leaf-internal spatial sort (see
/// [`crate::kdtree`]), which wants consecutive leaf slots to be near
/// neighbors for the dual-tree warm-start chain.
#[inline]
pub(crate) fn morton_code(p: Point3, min: Point3, inv_extent: Point3) -> u32 {
    let q = |v: f32, lo: f32, inv: f32| -> u32 {
        let t = ((v - lo) * inv).clamp(0.0, 1023.0);
        // NaN clamps to 0 via the comparison chain below.
        if t.is_finite() {
            t as u32
        } else {
            0
        }
    };
    expand_bits_10(q(p.x, min.x, inv_extent.x))
        | (expand_bits_10(q(p.y, min.y, inv_extent.y)) << 1)
        | (expand_bits_10(q(p.z, min.z, inv_extent.z)) << 2)
}

/// Morton-bucket ordering of a query batch: returns `(visit, codes)` where
/// `visit` lists query indices grouped by spatial bucket (one linear
/// counting sort over the top `bucket_bits` of each query's Morton code)
/// and `codes[i]` is query `i`'s bucket id. Grouping at this granularity
/// captures the locality that matters (buckets are finer than the index
/// regions whose cache reuse pays) at a fraction of a full sort's cost.
pub(crate) fn morton_buckets(queries: &[Point3], bucket_bits: u32) -> (Vec<u32>, Vec<u32>) {
    debug_assert!((1..=24).contains(&bucket_bits));
    let mut min = Point3::splat(f32::INFINITY);
    let mut max = Point3::splat(f32::NEG_INFINITY);
    for &q in queries {
        min = min.min(q);
        max = max.max(q);
    }
    let ext = max - min;
    let inv = Point3::new(
        if ext.x > 0.0 { 1024.0 / ext.x } else { 0.0 },
        if ext.y > 0.0 { 1024.0 / ext.y } else { 0.0 },
        if ext.z > 0.0 { 1024.0 / ext.z } else { 0.0 },
    );
    let codes: Vec<u32> = queries
        .iter()
        .map(|&q| morton_code(q, min, inv) >> (30 - bucket_bits))
        .collect();
    let mut bucket_starts = vec![0u32; (1usize << bucket_bits) + 1];
    for &c in &codes {
        bucket_starts[c as usize + 1] += 1;
    }
    for b in 1..bucket_starts.len() {
        bucket_starts[b] += bucket_starts[b - 1];
    }
    let mut visit: Vec<u32> = vec![0; queries.len()];
    for (i, &c) in codes.iter().enumerate() {
        let slot = &mut bucket_starts[c as usize];
        visit[*slot as usize] = i as u32;
        *slot += 1;
    }
    (visit, codes)
}

/// Drives a batched kNN sweep: runs `query_fn` once per query (filling a
/// best list of exactly `stride = k.min(indexed_len)` entries) and appends
/// one CSR row per query to `out`, in query order.
///
/// Large batches are processed in Morton order — spatially adjacent queries
/// walk near-identical index regions, so the index's working set stays
/// cache-resident between consecutive queries instead of being re-fetched
/// for every random-order query. Results land in a fixed-stride scratch
/// (exact kNN rows all have `stride` entries) and are emitted in the
/// caller's original order, so the reordering is invisible in the output:
/// every backend's candidates flow through [`push_best`], making results
/// independent of visit order even under distance ties.
///
/// Backends start each query with [`BestK::begin_warm`], and the driver
/// hands every query of a sweep the *same* accumulator: the previous,
/// Morton-adjacent query's surviving positions give a tight warm-start
/// pruning cap at zero gather cost — a batch-only advantage (the cold
/// per-query path has no previous query) with bit-identical results.
pub(crate) fn batch_queries(
    queries: &[Point3],
    stride: usize,
    out: &mut Neighborhoods,
    mut query_fn: impl FnMut(Point3, &mut BestK),
) {
    let mut best = BestK::default();
    if queries.len() < REORDER_MIN_QUERIES {
        for &q in queries {
            query_fn(q, &mut best);
            out.push_row_u32_iter(best.sorted_keys().iter().map(|&key| key as u32));
        }
        return;
    }
    // Bucket granularity scales with the batch so the counting table stays
    // proportionate (roughly one bucket per query — effectively a full
    // spatial sort), capped at 18 bits: a 1 MB table amortizes fine at
    // 100k+ queries but would dominate the smallest reordered batches.
    let bits = (usize::BITS - queries.len().leading_zeros() + 1).min(18);
    let (visit, _codes) = morton_buckets(queries, bits);
    debug_assert_eq!(visit.len(), queries.len());
    // Exact kNN rows are stride-uniform, so every row's final location is
    // known up front: reserve the whole CSR block once and scatter each
    // row straight into place — no intermediate buffer, no gather pass.
    let slab = out.push_uniform_rows(queries.len(), stride);
    for (pos, &qi) in visit.iter().enumerate() {
        // Pull the upcoming queries' cache lines in while this one runs —
        // the visit permutation makes them non-sequential loads.
        if let Some(&next) = visit.get(pos + 8) {
            crate::kernels::prefetch_read(&queries[next as usize]);
        }
        query_fn(queries[qi as usize], &mut best);
        let row = best.sorted_keys();
        debug_assert_eq!(row.len(), stride, "exact kNN rows are stride-uniform");
        let dst = &mut slab[qi as usize * stride..qi as usize * stride + stride];
        // The low 32 bits of a packed key ARE the neighbor index.
        for (d, &key) in dst.iter_mut().zip(row) {
            *d = key as u32;
        }
    }
}

/// Brute-force exact kNN over a point slice.
///
/// O(n) per query; used as the correctness oracle and for very small clouds
/// where building an index is not worthwhile.
///
/// # Example
///
/// ```
/// use volut_pointcloud::{knn::{BruteForce, NeighborSearch}, Point3};
/// let pts = vec![Point3::new(0.0, 0.0, 0.0), Point3::new(1.0, 0.0, 0.0), Point3::new(5.0, 0.0, 0.0)];
/// let bf = BruteForce::new(&pts);
/// let nn = bf.knn(Point3::new(0.9, 0.0, 0.0), 2);
/// assert_eq!(nn[0].index, 1);
/// assert_eq!(nn[1].index, 0);
/// ```
#[derive(Debug, Clone)]
pub struct BruteForce {
    points: Vec<Point3>,
    /// The same points as SoA lanes (original order) for the shared scan
    /// kernel; `ids` is the identity map the kernel expects.
    soa: crate::soa::SoaPositions,
    ids: Vec<u32>,
}

impl BruteForce {
    /// Indexes (copies) the given points.
    pub fn new(points: &[Point3]) -> Self {
        let mut soa = crate::soa::SoaPositions::default();
        soa.fill(points);
        Self {
            points: points.to_vec(),
            soa,
            ids: (0..points.len() as u32).collect(),
        }
    }

    /// The indexed points.
    pub fn points(&self) -> &[Point3] {
        &self.points
    }
}

impl NeighborSearch for BruteForce {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn knn(&self, query: Point3, k: usize) -> Vec<Neighbor> {
        if k == 0 || self.points.is_empty() {
            return Vec::new();
        }
        // Bounded best-k accumulator: for the small k used by the SR
        // pipeline (k <= 32) this beats both a BinaryHeap and full sorts;
        // the candidate sweep is one streaming pass of the shared kernel.
        let mut best = BestK::default();
        best.begin(k);
        crate::kernels::scan_ids(&self.soa, &self.ids, 0, self.ids.len(), query, &mut best);
        best.sorted()
    }

    fn radius(&self, query: Point3, radius: f32) -> Vec<Neighbor> {
        let r2 = radius * radius;
        let mut cands = Vec::new();
        crate::kernels::scan_radius_ids(
            &self.soa,
            &self.ids,
            0,
            self.ids.len(),
            query,
            r2,
            &mut cands,
        );
        let len = cands.len();
        finalize_candidates(cands, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points() -> Vec<Point3> {
        let mut pts = Vec::new();
        for x in 0..4 {
            for y in 0..4 {
                for z in 0..4 {
                    pts.push(Point3::new(x as f32, y as f32, z as f32));
                }
            }
        }
        pts
    }

    #[test]
    fn knn_returns_sorted_results() {
        let pts = grid_points();
        let bf = BruteForce::new(&pts);
        let nn = bf.knn(Point3::new(0.1, 0.1, 0.1), 5);
        assert_eq!(nn.len(), 5);
        for w in nn.windows(2) {
            assert!(w[0].distance_squared <= w[1].distance_squared);
        }
        assert_eq!(nn[0].index, 0);
    }

    #[test]
    fn knn_k_zero_and_empty() {
        let bf = BruteForce::new(&[]);
        assert!(bf.knn(Point3::ZERO, 3).is_empty());
        assert!(bf.is_empty());
        let bf = BruteForce::new(&[Point3::ZERO]);
        assert!(bf.knn(Point3::ZERO, 0).is_empty());
    }

    #[test]
    fn knn_more_than_available() {
        let bf = BruteForce::new(&[Point3::ZERO, Point3::ONE]);
        let nn = bf.knn(Point3::ZERO, 10);
        assert_eq!(nn.len(), 2);
    }

    #[test]
    fn radius_query_filters_correctly() {
        let pts = grid_points();
        let bf = BruteForce::new(&pts);
        let within = bf.radius(Point3::new(0.0, 0.0, 0.0), 1.0);
        // Origin plus its three axis neighbors at distance exactly 1.
        assert_eq!(within.len(), 4);
        assert_eq!(within[0].index, 0);
        assert_eq!(within[0].distance_squared, 0.0);
    }

    #[test]
    fn neighbor_distance_accessor() {
        let n = Neighbor {
            index: 0,
            distance_squared: 4.0,
        };
        assert_eq!(n.distance(), 2.0);
    }

    #[test]
    fn default_knn_batch_matches_per_query_loop() {
        let pts = grid_points();
        let bf = BruteForce::new(&pts);
        let queries = vec![
            Point3::new(0.1, 0.1, 0.1),
            Point3::new(3.9, 3.9, 3.9),
            Point3::new(-5.0, 0.0, 0.0),
        ];
        let mut batch = Neighborhoods::new();
        bf.knn_batch(&queries, 5, &mut batch);
        assert_eq!(batch.len(), queries.len());
        for (i, &q) in queries.iter().enumerate() {
            let expected: Vec<u32> = bf.knn(q, 5).iter().map(|n| n.index as u32).collect();
            assert_eq!(batch.row(i), expected.as_slice(), "query {i}");
        }
        // Appending semantics: a second batch extends the container.
        bf.knn_batch(&queries[..1], 2, &mut batch);
        assert_eq!(batch.len(), queries.len() + 1);
        assert_eq!(batch.row(3).len(), 2);
    }

    #[test]
    fn knn_batch_edge_cases() {
        let empty = BruteForce::new(&[]);
        let mut out = Neighborhoods::new();
        empty.knn_batch(&[Point3::ZERO, Point3::ONE], 3, &mut out);
        assert_eq!(out.len(), 2);
        assert!(out.row(0).is_empty() && out.row(1).is_empty());

        let two = BruteForce::new(&[Point3::ZERO, Point3::ONE]);
        let mut out = Neighborhoods::new();
        // k = 0 appends empty rows; k > len returns all points.
        two.knn_batch(&[Point3::ZERO], 0, &mut out);
        two.knn_batch(&[Point3::ZERO], 10, &mut out);
        assert_eq!(out.len(), 2);
        assert!(out.row(0).is_empty());
        assert_eq!(out.row(1), &[0, 1]);
    }

    #[test]
    fn ties_broken_by_index() {
        let pts = vec![
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(-1.0, 0.0, 0.0),
            Point3::new(0.0, 1.0, 0.0),
        ];
        let bf = BruteForce::new(&pts);
        let nn = bf.knn(Point3::ZERO, 3);
        assert_eq!(
            nn.iter().map(|n| n.index).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }
}

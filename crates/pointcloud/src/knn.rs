//! Nearest-neighbor search abstractions and the brute-force baseline.
//!
//! All spatial indices in this crate ([`crate::kdtree::KdTree`],
//! [`crate::octree::TwoLayerOctree`], [`crate::voxelgrid::VoxelGrid`])
//! implement the [`NeighborSearch`] trait so the super-resolution pipeline
//! can swap backends; the brute-force implementation here is the reference
//! oracle the property tests compare against.

use crate::point::Point3;

/// A single neighbor returned by a kNN query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index of the neighbor in the indexed point set.
    pub index: usize,
    /// Squared Euclidean distance from the query point.
    pub distance_squared: f32,
}

impl Neighbor {
    /// Euclidean (non-squared) distance from the query point.
    #[inline]
    pub fn distance(&self) -> f32 {
        self.distance_squared.sqrt()
    }
}

/// Common interface for k-nearest-neighbor backends.
///
/// Implementations index a fixed point set at construction time and answer
/// `knn` / `radius` queries against it. Results are sorted by increasing
/// distance and ties are broken by index so all backends agree exactly.
pub trait NeighborSearch: Send + Sync {
    /// Number of points indexed by this structure.
    fn len(&self) -> usize;

    /// Returns `true` when no points are indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the `k` nearest neighbors of `query`, sorted by increasing
    /// distance (then index). Returns fewer than `k` entries when the indexed
    /// set is smaller than `k`; returns an empty vector when `k == 0`.
    fn knn(&self, query: Point3, k: usize) -> Vec<Neighbor>;

    /// Returns all indexed points within `radius` of `query`, sorted by
    /// increasing distance (then index).
    fn radius(&self, query: Point3, radius: f32) -> Vec<Neighbor>;
}

/// Sorts neighbor candidates by `(distance, index)` and truncates to `k`.
pub(crate) fn finalize_candidates(mut cands: Vec<Neighbor>, k: usize) -> Vec<Neighbor> {
    cands.sort_by(|a, b| {
        a.distance_squared
            .total_cmp(&b.distance_squared)
            .then(a.index.cmp(&b.index))
    });
    cands.truncate(k);
    cands
}

/// Brute-force exact kNN over a point slice.
///
/// O(n) per query; used as the correctness oracle and for very small clouds
/// where building an index is not worthwhile.
///
/// # Example
///
/// ```
/// use volut_pointcloud::{knn::{BruteForce, NeighborSearch}, Point3};
/// let pts = vec![Point3::new(0.0, 0.0, 0.0), Point3::new(1.0, 0.0, 0.0), Point3::new(5.0, 0.0, 0.0)];
/// let bf = BruteForce::new(&pts);
/// let nn = bf.knn(Point3::new(0.9, 0.0, 0.0), 2);
/// assert_eq!(nn[0].index, 1);
/// assert_eq!(nn[1].index, 0);
/// ```
#[derive(Debug, Clone)]
pub struct BruteForce {
    points: Vec<Point3>,
}

impl BruteForce {
    /// Indexes (copies) the given points.
    pub fn new(points: &[Point3]) -> Self {
        Self {
            points: points.to_vec(),
        }
    }

    /// The indexed points.
    pub fn points(&self) -> &[Point3] {
        &self.points
    }
}

impl NeighborSearch for BruteForce {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn knn(&self, query: Point3, k: usize) -> Vec<Neighbor> {
        if k == 0 || self.points.is_empty() {
            return Vec::new();
        }
        // Maintain a bounded max-heap-like vector: for the small k used by the
        // SR pipeline (k <= 32) a sorted insert is faster than a BinaryHeap.
        let mut best: Vec<Neighbor> = Vec::with_capacity(k + 1);
        for (index, &p) in self.points.iter().enumerate() {
            let d2 = p.distance_squared(query);
            if best.len() < k || d2 < best[best.len() - 1].distance_squared {
                let n = Neighbor {
                    index,
                    distance_squared: d2,
                };
                let pos = best.partition_point(|x| (x.distance_squared, x.index) < (d2, index));
                best.insert(pos, n);
                if best.len() > k {
                    best.pop();
                }
            }
        }
        best
    }

    fn radius(&self, query: Point3, radius: f32) -> Vec<Neighbor> {
        let r2 = radius * radius;
        let cands = self
            .points
            .iter()
            .enumerate()
            .filter_map(|(index, &p)| {
                let d2 = p.distance_squared(query);
                (d2 <= r2).then_some(Neighbor {
                    index,
                    distance_squared: d2,
                })
            })
            .collect::<Vec<_>>();
        let len = cands.len();
        finalize_candidates(cands, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points() -> Vec<Point3> {
        let mut pts = Vec::new();
        for x in 0..4 {
            for y in 0..4 {
                for z in 0..4 {
                    pts.push(Point3::new(x as f32, y as f32, z as f32));
                }
            }
        }
        pts
    }

    #[test]
    fn knn_returns_sorted_results() {
        let pts = grid_points();
        let bf = BruteForce::new(&pts);
        let nn = bf.knn(Point3::new(0.1, 0.1, 0.1), 5);
        assert_eq!(nn.len(), 5);
        for w in nn.windows(2) {
            assert!(w[0].distance_squared <= w[1].distance_squared);
        }
        assert_eq!(nn[0].index, 0);
    }

    #[test]
    fn knn_k_zero_and_empty() {
        let bf = BruteForce::new(&[]);
        assert!(bf.knn(Point3::ZERO, 3).is_empty());
        assert!(bf.is_empty());
        let bf = BruteForce::new(&[Point3::ZERO]);
        assert!(bf.knn(Point3::ZERO, 0).is_empty());
    }

    #[test]
    fn knn_more_than_available() {
        let bf = BruteForce::new(&[Point3::ZERO, Point3::ONE]);
        let nn = bf.knn(Point3::ZERO, 10);
        assert_eq!(nn.len(), 2);
    }

    #[test]
    fn radius_query_filters_correctly() {
        let pts = grid_points();
        let bf = BruteForce::new(&pts);
        let within = bf.radius(Point3::new(0.0, 0.0, 0.0), 1.0);
        // Origin plus its three axis neighbors at distance exactly 1.
        assert_eq!(within.len(), 4);
        assert_eq!(within[0].index, 0);
        assert_eq!(within[0].distance_squared, 0.0);
    }

    #[test]
    fn neighbor_distance_accessor() {
        let n = Neighbor {
            index: 0,
            distance_squared: 4.0,
        };
        assert_eq!(n.distance(), 2.0);
    }

    #[test]
    fn ties_broken_by_index() {
        let pts = vec![
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(-1.0, 0.0, 0.0),
            Point3::new(0.0, 1.0, 0.0),
        ];
        let bf = BruteForce::new(&pts);
        let nn = bf.knn(Point3::ZERO, 3);
        assert_eq!(
            nn.iter().map(|n| n.index).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }
}

//! Geometric primitives: 3D points/vectors and RGB colors.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A point (or vector) in 3D Euclidean space with `f32` coordinates.
///
/// `Point3` is deliberately a plain `Copy` value type: the hot loops of the
/// super-resolution pipeline move millions of these per frame.
///
/// # Example
///
/// ```
/// use volut_pointcloud::Point3;
/// let a = Point3::new(1.0, 2.0, 3.0);
/// let b = Point3::new(1.0, 0.0, 3.0);
/// assert_eq!(a.distance(b), 2.0);
/// assert_eq!(a.midpoint(b), Point3::new(1.0, 1.0, 3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point3 {
    /// X coordinate.
    pub x: f32,
    /// Y coordinate.
    pub y: f32,
    /// Z coordinate.
    pub z: f32,
}

impl Point3 {
    /// The origin `(0, 0, 0)`.
    pub const ZERO: Point3 = Point3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// The point `(1, 1, 1)`.
    pub const ONE: Point3 = Point3 {
        x: 1.0,
        y: 1.0,
        z: 1.0,
    };

    /// Creates a new point from its three coordinates.
    #[inline]
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Self { x, y, z }
    }

    /// Creates a point with all coordinates equal to `v`.
    #[inline]
    pub const fn splat(v: f32) -> Self {
        Self { x: v, y: v, z: v }
    }

    /// Creates a point from a `[x, y, z]` array.
    #[inline]
    pub const fn from_array(a: [f32; 3]) -> Self {
        Self {
            x: a[0],
            y: a[1],
            z: a[2],
        }
    }

    /// Returns the coordinates as a `[x, y, z]` array.
    #[inline]
    pub const fn to_array(self) -> [f32; 3] {
        [self.x, self.y, self.z]
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_squared(self) -> f32 {
        self.x * self.x + self.y * self.y + self.z * self.z
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f32 {
        self.norm_squared().sqrt()
    }

    /// Squared Euclidean distance to `other`.
    #[inline]
    pub fn distance_squared(self, other: Point3) -> f32 {
        (self - other).norm_squared()
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Point3) -> f32 {
        self.distance_squared(other).sqrt()
    }

    /// Midpoint between `self` and `other` (the paper's interpolation primitive).
    #[inline]
    pub fn midpoint(self, other: Point3) -> Point3 {
        Point3::new(
            0.5 * (self.x + other.x),
            0.5 * (self.y + other.y),
            0.5 * (self.z + other.z),
        )
    }

    /// Linear interpolation: `self * (1 - t) + other * t`.
    #[inline]
    pub fn lerp(self, other: Point3, t: f32) -> Point3 {
        self + (other - self) * t
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Point3) -> f32 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, other: Point3) -> Point3 {
        Point3::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Returns the unit-length vector pointing in the same direction, or
    /// `None` when the norm is (numerically) zero.
    #[inline]
    pub fn normalized(self) -> Option<Point3> {
        let n = self.norm();
        if n <= f32::EPSILON {
            None
        } else {
            Some(self / n)
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Point3) -> Point3 {
        Point3::new(
            self.x.min(other.x),
            self.y.min(other.y),
            self.z.min(other.z),
        )
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Point3) -> Point3 {
        Point3::new(
            self.x.max(other.x),
            self.y.max(other.y),
            self.z.max(other.z),
        )
    }

    /// Largest coordinate value.
    #[inline]
    pub fn max_element(self) -> f32 {
        self.x.max(self.y).max(self.z)
    }

    /// Smallest coordinate value.
    #[inline]
    pub fn min_element(self) -> f32 {
        self.x.min(self.y).min(self.z)
    }

    /// Returns `true` when all coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl fmt::Display for Point3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl From<[f32; 3]> for Point3 {
    fn from(a: [f32; 3]) -> Self {
        Point3::from_array(a)
    }
}

impl From<Point3> for [f32; 3] {
    fn from(p: Point3) -> Self {
        p.to_array()
    }
}

impl From<(f32, f32, f32)> for Point3 {
    fn from(t: (f32, f32, f32)) -> Self {
        Point3::new(t.0, t.1, t.2)
    }
}

impl Index<usize> for Point3 {
    type Output = f32;

    /// # Panics
    /// Panics when `index >= 3`.
    fn index(&self, index: usize) -> &f32 {
        match index {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Point3 index out of range: {index}"),
        }
    }
}

impl IndexMut<usize> for Point3 {
    fn index_mut(&mut self, index: usize) -> &mut f32 {
        match index {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Point3 index out of range: {index}"),
        }
    }
}

impl Add for Point3 {
    type Output = Point3;
    #[inline]
    fn add(self, rhs: Point3) -> Point3 {
        Point3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Point3 {
    #[inline]
    fn add_assign(&mut self, rhs: Point3) {
        *self = *self + rhs;
    }
}

impl Sub for Point3 {
    type Output = Point3;
    #[inline]
    fn sub(self, rhs: Point3) -> Point3 {
        Point3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Point3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Point3) {
        *self = *self - rhs;
    }
}

impl Mul<f32> for Point3 {
    type Output = Point3;
    #[inline]
    fn mul(self, rhs: f32) -> Point3 {
        Point3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Div<f32> for Point3 {
    type Output = Point3;
    #[inline]
    fn div(self, rhs: f32) -> Point3 {
        Point3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl Neg for Point3 {
    type Output = Point3;
    #[inline]
    fn neg(self) -> Point3 {
        Point3::new(-self.x, -self.y, -self.z)
    }
}

/// An 8-bit RGB color attached to a point.
///
/// # Example
///
/// ```
/// use volut_pointcloud::Color;
/// let mid = Color::new(0, 0, 0).lerp(Color::new(255, 255, 255), 0.5);
/// assert_eq!(mid, Color::new(128, 128, 128));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Color {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

impl Color {
    /// Pure white.
    pub const WHITE: Color = Color {
        r: 255,
        g: 255,
        b: 255,
    };
    /// Pure black.
    pub const BLACK: Color = Color { r: 0, g: 0, b: 0 };

    /// Creates a color from its channels.
    #[inline]
    pub const fn new(r: u8, g: u8, b: u8) -> Self {
        Self { r, g, b }
    }

    /// Creates a gray color with all channels equal to `v`.
    #[inline]
    pub const fn gray(v: u8) -> Self {
        Self { r: v, g: v, b: v }
    }

    /// Returns the channels as floats in `[0, 1]`.
    #[inline]
    pub fn to_f32(self) -> [f32; 3] {
        [
            f32::from(self.r) / 255.0,
            f32::from(self.g) / 255.0,
            f32::from(self.b) / 255.0,
        ]
    }

    /// Builds a color from floats in `[0, 1]`, clamping out-of-range values.
    #[inline]
    pub fn from_f32(rgb: [f32; 3]) -> Self {
        let q = |v: f32| (v.clamp(0.0, 1.0) * 255.0).round() as u8;
        Self::new(q(rgb[0]), q(rgb[1]), q(rgb[2]))
    }

    /// Linear interpolation between two colors.
    #[inline]
    pub fn lerp(self, other: Color, t: f32) -> Color {
        let a = self.to_f32();
        let b = other.to_f32();
        Color::from_f32([
            a[0] + (b[0] - a[0]) * t,
            a[1] + (b[1] - a[1]) * t,
            a[2] + (b[2] - a[2]) * t,
        ])
    }

    /// Rec.601 luma of the color in `[0, 1]`; used by the color PSNR metric.
    #[inline]
    pub fn luma(self) -> f32 {
        let [r, g, b] = self.to_f32();
        0.299 * r + 0.587 * g + 0.114 * b
    }
}

impl fmt::Display for Color {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{:02x}{:02x}{:02x}", self.r, self.g, self.b)
    }
}

impl From<[u8; 3]> for Color {
    fn from(a: [u8; 3]) -> Self {
        Color::new(a[0], a[1], a[2])
    }
}

impl From<Color> for [u8; 3] {
    fn from(c: Color) -> Self {
        [c.r, c.g, c.b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_arithmetic() {
        let a = Point3::new(1.0, 2.0, 3.0);
        let b = Point3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Point3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Point3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Point3::new(2.0, 4.0, 6.0));
        assert_eq!(b / 2.0, Point3::new(2.0, 2.5, 3.0));
        assert_eq!(-a, Point3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn point_distance_and_midpoint() {
        let a = Point3::new(0.0, 0.0, 0.0);
        let b = Point3::new(3.0, 4.0, 0.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_squared(b), 25.0);
        assert_eq!(a.midpoint(b), Point3::new(1.5, 2.0, 0.0));
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
    }

    #[test]
    fn point_dot_cross() {
        let x = Point3::new(1.0, 0.0, 0.0);
        let y = Point3::new(0.0, 1.0, 0.0);
        assert_eq!(x.dot(y), 0.0);
        assert_eq!(x.cross(y), Point3::new(0.0, 0.0, 1.0));
    }

    #[test]
    fn point_normalized() {
        let v = Point3::new(0.0, 3.0, 4.0);
        let n = v.normalized().unwrap();
        assert!((n.norm() - 1.0).abs() < 1e-6);
        assert!(Point3::ZERO.normalized().is_none());
    }

    #[test]
    fn point_min_max() {
        let a = Point3::new(1.0, 5.0, -2.0);
        let b = Point3::new(3.0, 2.0, 0.0);
        assert_eq!(a.min(b), Point3::new(1.0, 2.0, -2.0));
        assert_eq!(a.max(b), Point3::new(3.0, 5.0, 0.0));
        assert_eq!(a.max_element(), 5.0);
        assert_eq!(a.min_element(), -2.0);
    }

    #[test]
    fn point_indexing() {
        let mut p = Point3::new(1.0, 2.0, 3.0);
        assert_eq!(p[0], 1.0);
        assert_eq!(p[2], 3.0);
        p[1] = 9.0;
        assert_eq!(p.y, 9.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn point_index_out_of_range_panics() {
        let p = Point3::ZERO;
        let _ = p[3];
    }

    #[test]
    fn point_conversions() {
        let p: Point3 = [1.0, 2.0, 3.0].into();
        let a: [f32; 3] = p.into();
        assert_eq!(a, [1.0, 2.0, 3.0]);
        let q: Point3 = (4.0, 5.0, 6.0).into();
        assert_eq!(q, Point3::new(4.0, 5.0, 6.0));
    }

    #[test]
    fn color_roundtrip() {
        let c = Color::new(10, 128, 250);
        let f = c.to_f32();
        let back = Color::from_f32(f);
        assert_eq!(c, back);
        let arr: [u8; 3] = c.into();
        assert_eq!(Color::from(arr), c);
    }

    #[test]
    fn color_lerp_and_luma() {
        assert_eq!(Color::BLACK.lerp(Color::WHITE, 0.0), Color::BLACK);
        assert_eq!(Color::BLACK.lerp(Color::WHITE, 1.0), Color::WHITE);
        assert!((Color::WHITE.luma() - 1.0).abs() < 1e-6);
        assert!(Color::BLACK.luma().abs() < 1e-6);
    }

    #[test]
    fn display_impls_are_nonempty() {
        assert!(!format!("{}", Point3::ZERO).is_empty());
        assert!(!format!("{}", Color::WHITE).is_empty());
    }
}

//! Property tests for the work-stealing runtime's determinism contract:
//! the pipeline's output must be **bit-identical at every worker count**
//! (and therefore under every stealing schedule). Worker counts {1, 2, 4,
//! 8} are pinned via `runtime::with_workers` regardless of the host's core
//! count — on a single-core machine the pool still runs real concurrent
//! threads, so the parallel code paths (chunked interpolation,
//! colorization, refinement, and the sharded dual-tree traversal) are
//! genuinely exercised. The CI feature matrix runs this file under both the
//! scalar and SIMD kernels and under `VOLUT_WORKERS` overrides.
//!
//! Sizes straddle the dual-tree auto threshold (4096 queries), so cases
//! cover both multi-worker routes of the engine's kNN driver: the
//! pre-chunked single-tree sweep below it and the internally-sharded
//! dual-tree traversal above it.

use proptest::prelude::*;
use volut::core::config::SrConfig;
use volut::core::interpolate::dilated::dilated_interpolate_with;
use volut::core::interpolate::naive::naive_interpolate_with;
use volut::core::interpolate::FrameScratch;
use volut::pointcloud::runtime;
use volut::pointcloud::synthetic::{self, DeltaStreamConfig};
use volut::pointcloud::{Neighborhoods, PointCloud};

/// Worker counts every invariance test pins. 1 is the sequential baseline;
/// 8 oversubscribes any CI host, maximizing steal/interleave variety.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Everything interpolation emits that the determinism contract covers.
type FrameOutput = (PointCloud, Neighborhoods, Vec<(usize, usize)>);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Both interpolators, streamed over churned delta-frames (the
    /// temporal-reuse path: later frames recompute only invalidated rows),
    /// must produce byte-for-byte identical clouds, neighborhoods and
    /// parent tables at every worker count.
    #[test]
    fn interpolation_is_bit_identical_across_worker_counts(
        n in 3_400usize..5_200,
        churn_sel in 0usize..4,
        seed in 0u64..200,
        naive_sel in 0usize..2,
        ratio in 1.5f64..2.5,
    ) {
        let churn = [0.0, 0.05, 0.3, 1.0][churn_sel];
        let use_naive = naive_sel == 1;
        let base = synthetic::humanoid(n, 0.4, seed);
        let frames = synthetic::delta_frame_sequence(&base, 2, DeltaStreamConfig {
            churn,
            drift: 0.04,
            jitter: 0.006,
            seed,
        });
        let cfg = if use_naive { SrConfig::k4d1() } else { SrConfig::default() };
        let run = |workers: usize| -> Vec<FrameOutput> {
            runtime::with_workers(workers, || {
                let mut scratch = FrameScratch::new();
                frames
                    .iter()
                    .map(|frame| {
                        let r = if use_naive {
                            naive_interpolate_with(frame, &cfg, ratio, &mut scratch)
                        } else {
                            dilated_interpolate_with(frame, &cfg, ratio, &mut scratch)
                        }
                        .expect("interpolation succeeds");
                        (r.cloud, r.neighborhoods, r.parents)
                    })
                    .collect()
            })
        };
        let baseline = run(WORKER_COUNTS[0]);
        for &workers in &WORKER_COUNTS[1..] {
            let got = run(workers);
            for (frame_no, (got, want)) in got.iter().zip(&baseline).enumerate() {
                prop_assert_eq!(&got.0, &want.0, "frame {} cloud diverged at {} workers", frame_no, workers);
                prop_assert_eq!(&got.1, &want.1, "frame {} neighborhoods diverged at {} workers", frame_no, workers);
                prop_assert_eq!(&got.2, &want.2, "frame {} parents diverged at {} workers", frame_no, workers);
            }
        }
    }
}

/// The full streaming session — interpolation, colorization, refinement,
/// temporal reuse and the cached spatial index — replayed over the same
/// churned sequence at each worker count, must emit identical frames.
#[test]
fn full_session_is_bit_identical_across_worker_counts() {
    use volut::core::{refine::IdentityRefiner, SrConfig, SrPipeline};
    use volut::stream::client::SrSession;
    let n = 4_600; // above the dual-tree threshold: sharded traversal runs
    let base = synthetic::humanoid(n, 0.5, 11);
    let frames = synthetic::delta_frame_sequence(
        &base,
        3,
        DeltaStreamConfig {
            churn: 0.1,
            drift: 0.05,
            jitter: 0.01,
            seed: 23,
        },
    );
    let run = |workers: usize| {
        runtime::with_workers(workers, || {
            let mut session = SrSession::new(SrPipeline::new(
                SrConfig::default(),
                Box::new(IdentityRefiner),
            ));
            frames
                .iter()
                .map(|f| {
                    session
                        .upsample_frame(f, 2.0)
                        .expect("frame upsamples")
                        .cloud
                })
                .collect::<Vec<_>>()
        })
    };
    let baseline = run(WORKER_COUNTS[0]);
    for &workers in &WORKER_COUNTS[1..] {
        assert_eq!(
            run(workers),
            baseline,
            "session diverged at {workers} workers"
        );
    }
}

//! Property tests for the fault-tolerant delta streaming layer: after ANY
//! injected fault schedule (drops, duplicates, reordering, truncation, bit
//! corruption — bursty or independent) the resilient session's output must
//! be **bit-identical** to an always-clean session for every delivered
//! frame, and a wrong (cache-poisoning) delta declaration must always be
//! detected before it can influence any output. The CI chaos job runs this
//! file with a pinned seed set plus one rotating `CHAOS_SEED` (logged on
//! failure); the feature matrix runs it under both scalar and SIMD kernels.

use proptest::prelude::*;
use volut::core::refine::IdentityRefiner;
use volut::core::{SrConfig, SrPipeline};
use volut::pointcloud::delta::FrameDelta;
use volut::pointcloud::synthetic::{self, DeltaStreamConfig};
use volut::pointcloud::PointCloud;
use volut::stream::client::SrSession;
use volut::stream::faults::{FaultConfig, FaultyLink};
use volut::stream::link::SimulatedLink;
use volut::stream::resilience::{DeltaServer, ResilientSession, RetryPolicy};
use volut::stream::trace::NetworkTrace;

/// Extra seed rotated by CI (`CHAOS_SEED=<run id>`); 0 when unset so local
/// runs and the pinned CI seeds stay reproducible. Printed per case so a
/// failing rotating run can be replayed by pinning the value.
fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn churned_frames(n: usize, frames: usize, churn: f64, seed: u64) -> Vec<PointCloud> {
    let base = synthetic::humanoid(n, 0.4, seed);
    synthetic::delta_frame_sequence(
        &base,
        frames,
        DeltaStreamConfig {
            churn,
            drift: 0.05,
            jitter: 0.01,
            seed,
        },
    )
}

fn session(naive: bool) -> SrSession {
    let cfg = if naive {
        SrConfig::k4d1()
    } else {
        SrConfig::default()
    };
    SrSession::new(SrPipeline::new(cfg, Box::new(IdentityRefiner)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn any_fault_schedule_recovers_bit_identical(
        n in 60usize..350,
        churn_sel in 0usize..4,
        rate_sel in 0usize..3,
        seed in 0u64..10_000,
        naive_sel in 0usize..2,
    ) {
        let seed = seed ^ chaos_seed();
        println!("fault schedule case: seed {seed} (CHAOS_SEED {})", chaos_seed());
        let churn = [0.0, 0.05, 0.2, 0.6][churn_sel];
        let rate = [0.05, 0.15, 0.3][rate_sel];
        let use_naive = naive_sel == 1;
        let frames = churned_frames(n, 6, churn, seed);
        let server = DeltaServer::new(frames.clone());
        let trace = NetworkTrace::stable(60.0, 600.0);
        let mut link = FaultyLink::new(
            SimulatedLink::new(&trace),
            FaultConfig::chaos(rate),
            seed.wrapping_mul(0x9E3779B97F4A7C15),
        );
        // Deep retry budget: the property is about correctness under any
        // schedule the injector emits, not about giving up gracefully.
        let mut resilient = ResilientSession::with_policy(
            session(use_naive),
            RetryPolicy { max_retries: 12, ..RetryPolicy::default() },
        );
        let mut clean = session(use_naive);
        for (i, frame) in frames.iter().enumerate() {
            let a = resilient
                .advance(&server, &mut link, i as u64, 2.0)
                .expect("12 retries must outlast any injected burst");
            let b = clean.upsample_frame(frame, 2.0).unwrap();
            prop_assert_eq!(&a.cloud, &b.cloud, "frame {} diverged under faults", i);
        }
        let stats = resilient.stats();
        prop_assert_eq!(stats.frames, frames.len() as u64);
        // Every non-clean frame must be accounted to some recovery kind.
        prop_assert_eq!(
            stats.clean_frames + stats.recoveries(),
            stats.frames,
            "recovery bookkeeping must cover all frames: {:?}", stats
        );
    }

    #[test]
    fn wrong_deltas_are_always_detected_never_served(
        n in 60usize..300,
        churn in 0.05f64..0.8,
        seed in 0u64..10_000,
        naive_sel in 0usize..2,
    ) {
        let seed = seed ^ chaos_seed();
        let use_naive = naive_sel == 1;
        let frames = churned_frames(n, 3, churn, seed);
        let mut poisoned = session(use_naive);
        let mut clean = session(use_naive);
        // Warm both sessions on frames 0 and 1.
        for frame in &frames[..2] {
            poisoned.upsample_frame(frame, 2.0).unwrap();
            clean.upsample_frame(frame, 2.0).unwrap();
        }
        // Declare a stale delta (frame0 → frame1) for frame 2: a poisoned
        // survivor map that, if trusted, would remap kNN rows to the wrong
        // points. The engine must reject it and fall back to its own diff.
        let wrong = FrameDelta::diff(frames[0].positions(), frames[1].positions());
        let a = poisoned
            .upsample_frame_delta(&frames[2], 2.0, wrong)
            .unwrap();
        let b = clean.upsample_frame(&frames[2], 2.0).unwrap();
        prop_assert!(
            poisoned.last_delta_error().is_some(),
            "poisoned delta must be detected (churn {})", churn
        );
        prop_assert_eq!(&a.cloud, &b.cloud, "detected poisoning must not alter output");
        // After an explicit flush the next frame is cold and still
        // bit-identical to a fresh session: resync fully clears the caches.
        poisoned.flush_caches();
        let again = poisoned.upsample_frame(&frames[2], 2.0).unwrap();
        let fresh = session(use_naive).upsample_frame(&frames[2], 2.0).unwrap();
        prop_assert_eq!(&again.cloud, &fresh.cloud);
    }
}

//! Integration tests spanning the streaming substrate and the SR core: full
//! sessions for every system variant, the server encoder feeding the SR
//! pipeline, and the paper's headline orderings.

use volut::core::refine::IdentityRefiner;
use volut::core::{SrConfig, SrPipeline};
use volut::pointcloud::metrics;
use volut::stream::chunk::chunk_video;
use volut::stream::encoder::ServerEncoder;
use volut::stream::simulator::{SessionConfig, StreamingSimulator};
use volut::stream::systems::SystemKind;
use volut::stream::trace::NetworkTrace;
use volut::stream::video::{VideoMeta, VolumetricVideo};

#[test]
fn every_system_variant_completes_a_session() {
    let sim = StreamingSimulator::new(SessionConfig::default());
    let mut video = VideoMeta::long_dress();
    video.frame_count = 900; // 30 s
    let trace = NetworkTrace::synthetic_lte(60.0, 20.0, 120.0, 5);
    for system in SystemKind::all() {
        let r = sim.run(&video, &trace, system).unwrap();
        assert_eq!(r.timeline.len(), 30, "{system:?}");
        assert!(r.data_bytes > 0, "{system:?}");
        assert!(
            r.qoe.normalized >= 0.0 && r.qoe.normalized <= 100.0,
            "{system:?}"
        );
        assert!(
            r.mean_fetch_density > 0.0 && r.mean_fetch_density <= 1.0,
            "{system:?}"
        );
    }
}

#[test]
fn headline_claims_hold_in_shape() {
    // Bandwidth reduction vs raw streaming and QoE advantage over Yuzu-SR.
    let sim = StreamingSimulator::new(SessionConfig::default());
    let mut video = VideoMeta::long_dress();
    video.frame_count = 1800; // 60 s
    let stable = NetworkTrace::stable(50.0, 120.0);

    let volut = sim
        .run(&video, &stable, SystemKind::VolutContinuous)
        .unwrap();
    let yuzu = sim.run(&video, &stable, SystemKind::YuzuSr).unwrap();
    let full_bytes: u64 = chunk_video(&video, sim.config().chunk_duration_s)
        .iter()
        .map(|c| c.encoded_bytes(1.0))
        .sum();

    // Paper: ~70% bandwidth reduction vs raw full-density streaming.
    let fraction = volut.data_bytes as f64 / full_bytes as f64;
    assert!(
        fraction < 0.35,
        "expected < 35% of raw bytes, got {fraction:.3}"
    );
    // Paper: higher QoE than Yuzu-SR with less data.
    assert!(volut.qoe.normalized > yuzu.qoe.normalized);
    assert!(volut.data_bytes < yuzu.data_bytes);
}

#[test]
fn server_encoder_feeds_the_sr_pipeline() {
    // Materialize a tiny video, encode a downsampled frame server-side,
    // decode it client-side and upsample it back — the full data path of
    // Figure 2 minus the network.
    let meta = VideoMeta::tiny(3, 2_000);
    let video = VolumetricVideo::generate(&meta, 3, 2_000, 9);
    let encoder = ServerEncoder::new(&video);

    let requested_density = 0.5;
    let encoded = encoder.encode_frame(1, requested_density, 4).unwrap();
    assert!(encoded.byte_len() < video.frame(1).unwrap().byte_size());

    let received = encoded.decode().unwrap();
    let pipeline = SrPipeline::new(SrConfig::default(), Box::new(IdentityRefiner));
    let sr_ratio = 1.0 / requested_density;
    let reconstructed = pipeline.upsample(&received, sr_ratio).unwrap();

    let gt = video.frame(1).unwrap();
    let relative_gap = (reconstructed.cloud.len() as f64 - gt.len() as f64).abs() / gt.len() as f64;
    assert!(
        relative_gap < 0.1,
        "post-SR density should approach the original"
    );
    assert!(
        metrics::one_sided_chamfer(gt, &reconstructed.cloud)
            < metrics::one_sided_chamfer(gt, &received)
    );
}

#[test]
fn lte_traces_are_harder_than_stable_for_every_system() {
    let sim = StreamingSimulator::new(SessionConfig::default());
    let mut video = VideoMeta::loot();
    video.frame_count = 900;
    let stable = NetworkTrace::stable(50.0, 60.0);
    let lte = NetworkTrace::synthetic_lte(32.5, 13.5, 60.0, 3);
    for system in [SystemKind::VolutContinuous, SystemKind::YuzuSr] {
        let s = sim.run(&video, &stable, system).unwrap();
        let l = sim.run(&video, &lte, system).unwrap();
        assert!(
            l.qoe.normalized <= s.qoe.normalized + 5.0,
            "{system:?}: lte {} should not beat stable {}",
            l.qoe.normalized,
            s.qoe.normalized
        );
    }
}

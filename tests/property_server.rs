//! Determinism contract of the multi-tenant server: given the same session
//! specs and seeds, every per-session output digest and the aggregate QoE
//! must be identical across `VOLUT_WORKERS` counts (pinned here via
//! `runtime::with_workers` {1, 2, 4}) and across admission orderings. The
//! server's wall-clock observations (frame-time percentiles, deadline-miss
//! counters) are explicitly *not* covered — they measure the host, not the
//! output — so the assertions compare digests, QoE, residency and frame
//! counts only.

use std::sync::Arc;

use volut::core::config::SrConfig;
use volut::core::encoding::KeyScheme;
use volut::core::lut::sparse::SparseLut;
use volut::core::lut::Lut;
use volut::core::registry::{ContentModel, ModelRegistry};
use volut::pointcloud::runtime;
use volut::stream::resilience::DegradationConfig;
use volut::stream::server::{ServerConfig, SessionSpec, SrServer};

const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

fn registry() -> Arc<ModelRegistry> {
    let mut registry = ModelRegistry::new();
    let mut lut = SparseLut::new();
    // A handful of deterministic entries so the LUT path is live.
    for key in 0..64u128 {
        lut.set(key * 7919, [0.01, -0.005, 0.002]).unwrap();
    }
    registry.publish(ContentModel::from_sparse(
        "demo",
        SrConfig::default(),
        KeyScheme::Full,
        lut,
        None,
    ));
    Arc::new(registry)
}

fn specs() -> Vec<SessionSpec> {
    (0..12)
        .map(|seed| SessionSpec {
            content: "demo".into(),
            seed,
            // Mixed sizes so the LPT dispatch order is non-trivial.
            points: 300 + (seed as usize % 4) * 150,
            churn: [0.0, 0.05, 0.15, 0.3][seed as usize % 4],
            frames: 5,
        })
        .collect()
}

/// Runs the full spec set and returns the determinism-covered outputs,
/// keyed by session seed (admission ids differ across orderings).
fn run_server(workers: usize, order: &[usize]) -> Vec<(u64, u64, String, u64, [u64; 5])> {
    runtime::with_workers(workers, || {
        let mut server = SrServer::new(registry(), ServerConfig::default());
        let all = specs();
        for &ix in order {
            assert!(server.enqueue(all[ix].clone()));
        }
        let report = server.run(256);
        assert_eq!(report.telemetry.sessions_retired, all.len() as u64);
        assert_eq!(report.frame_errors, 0);
        let mut rows: Vec<_> = report
            .sessions
            .iter()
            .map(|s| {
                (
                    s.seed,
                    s.digest,
                    format!("{:.9}", s.qoe.normalized),
                    s.frames,
                    s.residency,
                )
            })
            .collect();
        rows.sort();
        rows
    })
}

#[test]
fn sessions_are_bit_identical_across_worker_counts() {
    let order: Vec<usize> = (0..specs().len()).collect();
    let baseline = run_server(1, &order);
    for &workers in &WORKER_COUNTS[1..] {
        let got = run_server(workers, &order);
        assert_eq!(baseline, got, "workers={workers} diverged from baseline");
    }
}

#[test]
fn sessions_are_identical_across_admission_orderings() {
    let n = specs().len();
    let forward: Vec<usize> = (0..n).collect();
    let reverse: Vec<usize> = (0..n).rev().collect();
    // A fixed interleave: evens then odds.
    let interleaved: Vec<usize> = (0..n).step_by(2).chain((1..n).step_by(2)).collect();
    let baseline = run_server(2, &forward);
    assert_eq!(baseline, run_server(2, &reverse), "reverse admission");
    assert_eq!(
        baseline,
        run_server(2, &interleaved),
        "interleaved admission"
    );
}

#[test]
fn degraded_sessions_stay_deterministic_across_workers() {
    // A budget tight enough to push sessions down the degradation ladder:
    // planned levels come from the analytic model, so the ladder walk —
    // and therefore the digests and QoE — must replay exactly at every
    // worker count.
    let run = |workers: usize| {
        runtime::with_workers(workers, || {
            let config = ServerConfig {
                // Budget sized so Full overruns for the larger frames but
                // cheaper rungs fit: sessions straddle multiple levels.
                deadline_s: 140e-6,
                degradation: Some(DegradationConfig {
                    degrade_after: 1,
                    recover_after: 2,
                    recover_margin: 0.7,
                    ..DegradationConfig::default()
                }),
                ..ServerConfig::default()
            };
            let mut server = SrServer::new(registry(), config);
            for spec in specs() {
                assert!(server.enqueue(spec));
            }
            let report = server.run(256);
            let mut rows: Vec<_> = report
                .sessions
                .iter()
                .map(|s| {
                    (
                        s.seed,
                        s.digest,
                        format!("{:.9}", s.qoe.normalized),
                        s.residency,
                    )
                })
                .collect();
            rows.sort();
            rows
        })
    };
    let baseline = run(1);
    // At least one session must actually degrade, or the test is vacuous.
    assert!(
        baseline
            .iter()
            .any(|(_, _, _, residency)| residency[1..].iter().sum::<u64>() > 0),
        "budget did not force any degradation: {baseline:?}"
    );
    for &workers in &WORKER_COUNTS[1..] {
        assert_eq!(baseline, run(workers), "workers={workers}");
    }
}

//! Determinism contract of the multi-tenant server: given the same session
//! specs and seeds, every per-session output digest and the aggregate QoE
//! must be identical across `VOLUT_WORKERS` counts (pinned here via
//! `runtime::with_workers` {1, 2, 4}) and across admission orderings. The
//! server's wall-clock observations (frame-time percentiles, deadline-miss
//! counters) are explicitly *not* covered — they measure the host, not the
//! output — so the assertions compare digests, QoE, residency and frame
//! counts only.

use std::sync::Arc;

use volut::core::config::SrConfig;
use volut::core::encoding::KeyScheme;
use volut::core::lut::sparse::SparseLut;
use volut::core::lut::Lut;
use volut::core::registry::{ContentModel, ModelRegistry};
use volut::pointcloud::runtime;
use volut::stream::faults::FaultConfig;
use volut::stream::resilience::DegradationConfig;
use volut::stream::server::{
    IngestConfig, IngestSource, QuarantineCause, ServerConfig, SessionSpec, SrServer,
};

const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

fn registry() -> Arc<ModelRegistry> {
    let mut registry = ModelRegistry::new();
    let mut lut = SparseLut::new();
    // A handful of deterministic entries so the LUT path is live.
    for key in 0..64u128 {
        lut.set(key * 7919, [0.01, -0.005, 0.002]).unwrap();
    }
    registry.publish(ContentModel::from_sparse(
        "demo",
        SrConfig::default(),
        KeyScheme::Full,
        lut,
        None,
    ));
    Arc::new(registry)
}

fn specs() -> Vec<SessionSpec> {
    (0..12)
        .map(|seed| SessionSpec {
            content: "demo".into(),
            seed,
            // Mixed sizes so the LPT dispatch order is non-trivial.
            points: 300 + (seed as usize % 4) * 150,
            churn: [0.0, 0.05, 0.15, 0.3][seed as usize % 4],
            frames: 5,
            ingest: IngestSource::Local,
        })
        .collect()
}

/// Runs the full spec set and returns the determinism-covered outputs,
/// keyed by session seed (admission ids differ across orderings).
fn run_server(workers: usize, order: &[usize]) -> Vec<(u64, u64, String, u64, [u64; 5])> {
    runtime::with_workers(workers, || {
        let mut server = SrServer::new(registry(), ServerConfig::default());
        let all = specs();
        for &ix in order {
            assert!(server.enqueue(all[ix].clone()));
        }
        let report = server.run(256);
        assert_eq!(report.telemetry.sessions_retired, all.len() as u64);
        assert_eq!(report.frame_errors, 0);
        let mut rows: Vec<_> = report
            .sessions
            .iter()
            .map(|s| {
                (
                    s.seed,
                    s.digest,
                    format!("{:.9}", s.qoe.normalized),
                    s.frames,
                    s.residency,
                )
            })
            .collect();
        rows.sort();
        rows
    })
}

#[test]
fn sessions_are_bit_identical_across_worker_counts() {
    let order: Vec<usize> = (0..specs().len()).collect();
    let baseline = run_server(1, &order);
    for &workers in &WORKER_COUNTS[1..] {
        let got = run_server(workers, &order);
        assert_eq!(baseline, got, "workers={workers} diverged from baseline");
    }
}

#[test]
fn sessions_are_identical_across_admission_orderings() {
    let n = specs().len();
    let forward: Vec<usize> = (0..n).collect();
    let reverse: Vec<usize> = (0..n).rev().collect();
    // A fixed interleave: evens then odds.
    let interleaved: Vec<usize> = (0..n).step_by(2).chain((1..n).step_by(2)).collect();
    let baseline = run_server(2, &forward);
    assert_eq!(baseline, run_server(2, &reverse), "reverse admission");
    assert_eq!(
        baseline,
        run_server(2, &interleaved),
        "interleaved admission"
    );
}

#[test]
fn degraded_sessions_stay_deterministic_across_workers() {
    // A budget tight enough to push sessions down the degradation ladder:
    // planned levels come from the analytic model, so the ladder walk —
    // and therefore the digests and QoE — must replay exactly at every
    // worker count.
    let run = |workers: usize| {
        runtime::with_workers(workers, || {
            let config = ServerConfig {
                // Budget sized so Full overruns for the larger frames but
                // cheaper rungs fit: sessions straddle multiple levels.
                deadline_s: 140e-6,
                degradation: Some(DegradationConfig {
                    degrade_after: 1,
                    recover_after: 2,
                    recover_margin: 0.7,
                    ..DegradationConfig::default()
                }),
                ..ServerConfig::default()
            };
            let mut server = SrServer::new(registry(), config);
            for spec in specs() {
                assert!(server.enqueue(spec));
            }
            let report = server.run(256);
            let mut rows: Vec<_> = report
                .sessions
                .iter()
                .map(|s| {
                    (
                        s.seed,
                        s.digest,
                        format!("{:.9}", s.qoe.normalized),
                        s.residency,
                    )
                })
                .collect();
            rows.sort();
            rows
        })
    };
    let baseline = run(1);
    // At least one session must actually degrade, or the test is vacuous.
    assert!(
        baseline
            .iter()
            .any(|(_, _, _, residency)| residency[1..].iter().sum::<u64>() > 0),
        "budget did not force any degradation: {baseline:?}"
    );
    for &workers in &WORKER_COUNTS[1..] {
        assert_eq!(baseline, run(workers), "workers={workers}");
    }
}

// ---------------------------------------------------------------------------
// Cross-tenant isolation under ingest faults
// ---------------------------------------------------------------------------

/// The healthy population: half local ingest, half fed through the
/// resilient delta protocol over a clean link.
fn healthy_specs() -> Vec<SessionSpec> {
    specs()
        .into_iter()
        .enumerate()
        .map(|(i, mut spec)| {
            if i % 2 == 1 {
                spec.ingest = IngestSource::Resilient(IngestConfig::default());
            }
            spec
        })
        .collect()
}

/// Extra seed rotated by CI (`CHAOS_SEED=<run id>`): it re-seeds the lossy
/// hostile tenant's fault schedule, so coverage keeps moving while the
/// isolation claim — neighbors unchanged under *any* schedule — stays the
/// assertion. 0 when unset, keeping local runs and pinned CI seeds
/// reproducible.
fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Two hostile tenants: one on a heavily lossy link (exercises the full
/// recovery ladder every few frames) and one whose link is permanently
/// dead (must be quarantined).
fn hostile_specs() -> Vec<SessionSpec> {
    let lossy = SessionSpec {
        content: "demo".into(),
        seed: 100,
        points: 450,
        churn: 0.15,
        frames: 5,
        ingest: IngestSource::Resilient(IngestConfig {
            faults: FaultConfig {
                drop: 0.3,
                ..FaultConfig::default()
            },
            shared_fault_seed: Some(0xC4A05 ^ chaos_seed()),
            ..IngestConfig::default()
        }),
    };
    let mut dead = lossy.clone();
    dead.seed = 101;
    dead.ingest = IngestSource::Resilient(IngestConfig {
        faults: FaultConfig {
            drop: 1.0,
            ..FaultConfig::default()
        },
        ..IngestConfig::default()
    });
    vec![lossy, dead]
}

/// Runs the healthy population (optionally with the hostile tenants mixed
/// in at deterministic positions) and returns the healthy sessions'
/// determinism-covered rows, keyed by seed.
fn run_isolation(
    workers: usize,
    order: &[usize],
    with_hostile: bool,
) -> Vec<(u64, u64, String, u64, [u64; 5])> {
    runtime::with_workers(workers, || {
        let mut server = SrServer::new(registry(), ServerConfig::default());
        let all = healthy_specs();
        let hostile = hostile_specs();
        if with_hostile {
            assert!(server.enqueue(hostile[0].clone()));
        }
        for (i, &ix) in order.iter().enumerate() {
            assert!(server.enqueue(all[ix].clone()));
            if with_hostile && i == order.len() / 2 {
                assert!(server.enqueue(hostile[1].clone()));
            }
        }
        let report = server.run(512);
        if with_hostile {
            let dead = report
                .sessions
                .iter()
                .find(|s| s.seed == 101)
                .expect("the dead-link tenant is still reported");
            assert_eq!(dead.failure, Some(QuarantineCause::RetryExhausted));
            assert_eq!(dead.frames, 0, "a dead link never serves a frame");
            assert!(report.telemetry.sessions_quarantined >= 1);
        }
        let mut rows: Vec<_> = report
            .sessions
            .iter()
            .filter(|s| s.seed < 100)
            .map(|s| {
                assert_eq!(s.failure, None, "healthy tenant quarantined: {s:?}");
                (
                    s.seed,
                    s.digest,
                    format!("{:.9}", s.qoe.normalized),
                    s.frames,
                    s.residency,
                )
            })
            .collect();
        rows.sort();
        rows
    })
}

#[test]
fn faulted_and_quarantined_tenants_never_touch_neighbors() {
    println!("isolation case: CHAOS_SEED {}", chaos_seed());
    let n = healthy_specs().len();
    let forward: Vec<usize> = (0..n).collect();
    let reverse: Vec<usize> = (0..n).rev().collect();
    let baseline = run_isolation(1, &forward, false);
    assert_eq!(baseline.len(), n);
    for &workers in &WORKER_COUNTS {
        for order in [&forward, &reverse] {
            assert_eq!(
                baseline,
                run_isolation(workers, order, true),
                "hostile tenants moved a healthy tenant's bits \
                 (workers={workers}, order={order:?})"
            );
        }
    }
}

#[test]
fn resilient_ingest_is_deterministic_across_workers_and_orderings() {
    // The clean-link resilient tenants inside the healthy population must
    // themselves replay bit-identically — the ingest plane adds no
    // wall-clock or worker-order dependence.
    let n = healthy_specs().len();
    let forward: Vec<usize> = (0..n).collect();
    let reverse: Vec<usize> = (0..n).rev().collect();
    let baseline = run_isolation(1, &forward, false);
    for &workers in &WORKER_COUNTS[1..] {
        assert_eq!(baseline, run_isolation(workers, &forward, false));
    }
    assert_eq!(baseline, run_isolation(2, &reverse, false));
}

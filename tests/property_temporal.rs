//! Property tests for the temporal-coherence layer: the incremental
//! (delta-frame) kNN path must be **bit-identical** to a full recompute for
//! any churn level, frame shape and interpolator config — including
//! tie-heavy quantized clouds, duplicate points and clouds smaller than the
//! neighborhood size — and the kd-tree patch must agree with a fresh build.
//! The CI feature matrix runs this file under both the scalar and SIMD
//! kernels (the `simd` feature is bit-transparent, so one suite covers
//! both).

use proptest::prelude::*;
use volut::core::config::SrConfig;
use volut::core::interpolate::dilated::dilated_interpolate_with;
use volut::core::interpolate::naive::naive_interpolate_with;
use volut::core::interpolate::FrameScratch;
use volut::pointcloud::delta::FrameDelta;
use volut::pointcloud::kdtree::KdTree;
use volut::pointcloud::knn::NeighborSearch;
use volut::pointcloud::synthetic::{self, DeltaStreamConfig};
use volut::pointcloud::{Point3, PointCloud};

/// Quantizes positions to a coarse grid: exact duplicates and massive
/// distance ties.
fn quantize(cloud: &PointCloud, steps: f32) -> PointCloud {
    PointCloud::from_positions(
        cloud
            .positions()
            .iter()
            .map(|p| {
                Point3::new(
                    (p.x * steps).round() / steps,
                    (p.y * steps).round() / steps,
                    (p.z * steps).round() / steps,
                )
            })
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn incremental_interpolation_matches_full_recompute(
        n in 8usize..700,
        churn_sel in 0usize..5,
        seed in 0u64..300,
        quantized_sel in 0usize..2,
        naive_sel in 0usize..2,
        ratio in 1.2f64..3.0,
    ) {
        let churn = [0.0, 0.01, 0.1, 0.5, 1.0][churn_sel];
        let quantized = quantized_sel == 1;
        let use_naive = naive_sel == 1;
        let mut base = synthetic::humanoid(n, 0.4, seed);
        if quantized {
            base = quantize(&base, 6.0);
        }
        let frames = synthetic::delta_frame_sequence(&base, 3, DeltaStreamConfig {
            churn,
            drift: 0.04,
            jitter: 0.006,
            seed,
        });
        let cfg = if use_naive { SrConfig::k4d1() } else { SrConfig::default() };
        let mut on = FrameScratch::new();
        let mut off = FrameScratch::new();
        off.set_incremental(false);
        for (frame_no, frame) in frames.iter().enumerate() {
            let (a, b) = if use_naive {
                (
                    naive_interpolate_with(frame, &cfg, ratio, &mut on),
                    naive_interpolate_with(frame, &cfg, ratio, &mut off),
                )
            } else {
                (
                    dilated_interpolate_with(frame, &cfg, ratio, &mut on),
                    dilated_interpolate_with(frame, &cfg, ratio, &mut off),
                )
            };
            match (a, b) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(&a.cloud, &b.cloud, "frame {} clouds diverge", frame_no);
                    prop_assert_eq!(
                        &a.neighborhoods, &b.neighborhoods,
                        "frame {} neighborhoods diverge", frame_no
                    );
                    prop_assert_eq!(&a.parents, &b.parents);
                    on.recycle_neighborhoods(a.neighborhoods);
                    off.recycle_neighborhoods(b.neighborhoods);
                }
                (Err(_), Err(_)) => {}
                (a, b) => panic!(
                    "one path errored: incremental ok={} full ok={}",
                    a.is_ok(),
                    b.is_ok()
                ),
            }
        }
    }

    #[test]
    fn diffed_deltas_always_verify(
        n in 0usize..400,
        churn in 0.0f64..1.0,
        seed in 0u64..300,
    ) {
        let base = synthetic::sphere(n.max(1), 1.0, seed);
        let mut stream = synthetic::DeltaStream::new(base, DeltaStreamConfig {
            churn,
            drift: 0.05,
            jitter: 0.01,
            seed,
        });
        let before = stream.frame().clone();
        let truth = stream.advance();
        let after = stream.frame();
        prop_assert!(truth.verify(before.positions(), after.positions()).is_ok());
        let diffed = FrameDelta::diff(before.positions(), after.positions());
        prop_assert!(diffed.verify(before.positions(), after.positions()).is_ok());
        // The diff can only churn *more* than the generating truth (bitwise
        // identical survivors must all be recovered or conservatively
        // churned, never mismatched).
        prop_assert!(diffed.survivors() >= truth.survivors() || diffed.survivors() == 0);
    }

    #[test]
    fn patched_kdtree_matches_fresh_build(
        n in 20usize..500,
        churn in 0.0f64..0.6,
        seed in 0u64..300,
        k in 1usize..12,
    ) {
        let base = synthetic::gaussian_blobs(n, 4, 1.0, seed);
        let mut stream = synthetic::DeltaStream::new(base, DeltaStreamConfig {
            churn,
            drift: 0.1,
            jitter: 0.02,
            seed: seed ^ 0xABCD,
        });
        let mut tree = KdTree::build(stream.frame().positions());
        for _ in 0..2 {
            let delta = stream.advance();
            let new_points = stream.frame().positions();
            tree.patch(&delta, new_points);
            let fresh = KdTree::build(new_points);
            prop_assert_eq!(tree.points(), fresh.points());
            for (qi, &q) in new_points.iter().step_by((n / 12).max(1)).enumerate() {
                let a: Vec<usize> = tree.knn(q, k).iter().map(|x| x.index).collect();
                let b: Vec<usize> = fresh.knn(q, k).iter().map(|x| x.index).collect();
                prop_assert_eq!(a, b, "query {} diverged after patch", qi);
            }
        }
    }
}

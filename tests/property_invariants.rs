//! Cross-crate property-based tests on the core invariants of the system:
//! encoding stays inside its key space, sampling respects ratios, spatial
//! indices agree with the brute-force oracle, and the SR pipeline always
//! honors the requested ratio.

use proptest::prelude::*;
use volut::core::config::SrConfig;
use volut::core::encoding::{KeyScheme, PositionEncoder};
use volut::core::interpolate::dilated::dilated_interpolate;
use volut::pointcloud::dualtree::{BatchStrategy, DualTreeScratch};
use volut::pointcloud::kdtree::KdTree;
use volut::pointcloud::knn::{BruteForce, NeighborSearch};
use volut::pointcloud::octree::TwoLayerOctree;
use volut::pointcloud::{metrics, sampling, synthetic, Neighborhoods, Point3, PointCloud};

fn arb_point() -> impl Strategy<Value = Point3> {
    (-10.0f32..10.0, -10.0f32..10.0, -10.0f32..10.0).prop_map(|(x, y, z)| Point3::new(x, y, z))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn encoding_key_is_always_inside_key_space(
        center in arb_point(),
        neighbors in prop::collection::vec(arb_point(), 1..6),
        bins in 4usize..64,
    ) {
        let config = SrConfig { bins, ..SrConfig::default() };
        for scheme in [KeyScheme::Full, KeyScheme::Compact] {
            let enc = PositionEncoder::new(&config, scheme).unwrap();
            let e = enc.encode(center, &neighbors).unwrap();
            prop_assert!(e.key < enc.key_space());
            prop_assert!(e.radius > 0.0);
            // Every quantized index is a valid bin.
            prop_assert!(e.indices.iter().all(|&q| (q as usize) < bins));
            // Features are inside the normalized cube.
            prop_assert!(enc.features(&e).iter().all(|v| v.abs() <= 1.0 + 1e-5));
        }
    }

    #[test]
    fn random_downsample_is_a_subset_with_roughly_right_size(
        n in 200usize..1200,
        ratio in 0.1f64..0.9,
        seed in 0u64..1000,
    ) {
        let cloud = synthetic::sphere(n, 1.0, seed);
        let low = sampling::random_downsample(&cloud, ratio, seed).unwrap();
        prop_assert!(low.len() <= cloud.len());
        // Every sampled point exists in the original cloud (subset property):
        // since positions are unique on the sphere, check a few by distance.
        if !low.is_empty() {
            let tree = KdTree::build(cloud.positions());
            for i in (0..low.len()).step_by((low.len() / 8).max(1)) {
                let nn = tree.knn(low.position(i), 1);
                prop_assert!(nn[0].distance_squared < 1e-10);
            }
        }
        // Size concentrates around ratio * n (loose 6-sigma style bound).
        let expected = ratio * n as f64;
        let sigma = (n as f64 * ratio * (1.0 - ratio)).sqrt();
        prop_assert!((low.len() as f64 - expected).abs() < 6.0 * sigma + 2.0);
    }

    #[test]
    fn spatial_indices_agree_with_brute_force(
        points in prop::collection::vec(arb_point(), 30..200),
        query in arb_point(),
        k in 1usize..8,
    ) {
        let brute = BruteForce::new(&points);
        let kdtree = KdTree::build(&points);
        let octree = TwoLayerOctree::build(&points);
        let expected: Vec<usize> = brute.knn(query, k).iter().map(|n| n.index).collect();
        let kd: Vec<usize> = kdtree.knn(query, k).iter().map(|n| n.index).collect();
        let oc: Vec<usize> = octree.knn(query, k).iter().map(|n| n.index).collect();
        prop_assert_eq!(&kd, &expected);
        prop_assert_eq!(&oc, &expected);
    }

    #[test]
    fn knn_batch_is_bit_identical_to_per_query_loop(
        points in prop::collection::vec(arb_point(), 0..250),
        queries in prop::collection::vec(arb_point(), 1..40),
        k in 0usize..40,
        duplicate_every in 1usize..5,
    ) {
        // Inject exact duplicates (and quantized coordinates) so distance
        // ties are common: batched and per-query paths must break them
        // identically (by ascending index) for every backend.
        let mut points = points;
        let n = points.len();
        for i in (0..n).step_by(duplicate_every) {
            points.push(points[i]);
        }
        let mut queries = queries;
        let qn = queries.len();
        for i in (0..qn).step_by(2) {
            if i < points.len() {
                queries.push(points[i]); // self-queries on indexed points
            }
        }
        let backends: Vec<(&str, Box<dyn NeighborSearch>)> = vec![
            ("brute", Box::new(BruteForce::new(&points))),
            ("kdtree", Box::new(KdTree::build(&points))),
            ("octree", Box::new(TwoLayerOctree::build(&points))),
            ("voxelgrid", Box::new(volut::pointcloud::voxelgrid::VoxelGrid::build(&points, 1.5))),
        ];
        for (name, backend) in &backends {
            let mut batch = Neighborhoods::new();
            backend.knn_batch(&queries, k, &mut batch);
            prop_assert_eq!(batch.len(), queries.len(), "{}: one row per query", name);
            for (i, &q) in queries.iter().enumerate() {
                let expected: Vec<u32> =
                    backend.knn(q, k).iter().map(|n| n.index as u32).collect();
                prop_assert_eq!(
                    batch.row(i),
                    expected.as_slice(),
                    "{}: k {} query {}",
                    name, k, i
                );
            }
        }
    }

    #[test]
    fn dual_tree_all_knn_is_bit_identical_to_per_query(
        points in prop::collection::vec(arb_point(), 0..220),
        extra_queries in prop::collection::vec(arb_point(), 0..40),
        k in 0usize..40,
        duplicate_every in 1usize..5,
        monochromatic in 0usize..2,
    ) {
        // The dual-tree leaf-pair traversal (forced, so every batch size
        // takes it) must reproduce the per-query rows exactly — including
        // index-broken exact-distance ties from injected duplicates,
        // k >= cloud size, the empty cloud, and both join shapes: the
        // monochromatic self-join (query slice == indexed cloud, query
        // tree reused) and the bichromatic case (separate query tree over
        // a different point set). CI's feature matrix runs this under the
        // SIMD and scalar kernels alike.
        let mut points = points;
        let n = points.len();
        for i in (0..n).step_by(duplicate_every) {
            points.push(points[i]);
        }
        let tree = KdTree::build(&points);
        let queries: Vec<Point3> = if monochromatic == 1 {
            points.clone()
        } else {
            let mut q = extra_queries;
            q.extend(points.iter().step_by(3)); // exact landings on indexed points
            q
        };
        let mut scratch = DualTreeScratch::new();
        let mut batch = Neighborhoods::new();
        tree.knn_batch_with(&queries, k, &mut batch, BatchStrategy::DualTree, &mut scratch);
        prop_assert_eq!(batch.len(), queries.len());
        for (i, &q) in queries.iter().enumerate() {
            let expected: Vec<u32> = tree.knn(q, k).iter().map(|n| n.index as u32).collect();
            prop_assert_eq!(batch.row(i), expected.as_slice(), "k {} query {}", k, i);
        }
    }

    #[test]
    fn dual_tree_parity_on_degenerate_clouds(
        shape in 0usize..4,
        n in 20usize..300,
        k in 1usize..10,
        seed in 0u64..100,
        monochromatic in 0usize..2,
    ) {
        // The same degenerate geometries the batch parity suite covers —
        // all-identical points, collinear, planar grid, alternating-sign
        // spread — through the forced dual-tree path, monochromatic and
        // bichromatic. Zero-extent leaf/node boxes make every AABB–AABB
        // pair distance a tie, so this exercises the "equality still
        // visits" side of the pruning rule.
        let points: Vec<Point3> = match shape {
            0 => vec![Point3::splat(seed as f32 * 0.25); n],
            1 => (0..n).map(|i| Point3::new((i / 3) as f32, 0.0, 0.0)).collect(),
            2 => (0..n)
                .map(|i| Point3::new((i % 7) as f32, (i / 7) as f32, 0.0))
                .collect(),
            _ => (0..n)
                .map(|i| Point3::splat(if i % 2 == 0 { 0.5 } else { -0.5 } * (i as f32)))
                .collect(),
        };
        let queries: Vec<Point3> = if monochromatic == 1 {
            points.clone()
        } else {
            points.iter().copied().step_by(3).collect()
        };
        let tree = KdTree::build(&points);
        let mut scratch = DualTreeScratch::new();
        let mut batch = Neighborhoods::new();
        tree.knn_batch_with(&queries, k, &mut batch, BatchStrategy::DualTree, &mut scratch);
        prop_assert_eq!(batch.len(), queries.len());
        for (i, &q) in queries.iter().enumerate() {
            let expected: Vec<u32> = tree.knn(q, k).iter().map(|n| n.index as u32).collect();
            prop_assert_eq!(batch.row(i), expected.as_slice(), "shape {} query {}", shape, i);
        }
    }

    #[test]
    fn all_backends_agree_on_batches_with_ties(
        seed in 0u64..200,
        k in 1usize..12,
    ) {
        // Quantized coordinates force many exact ties across a structured
        // cloud; with (distance, index) ordering every backend must return
        // the same rows for the same batch.
        let cloud = synthetic::sphere(300, 1.0, seed);
        let points: Vec<Point3> = cloud
            .positions()
            .iter()
            .map(|p| Point3::new((p.x * 4.0).round() / 4.0, (p.y * 4.0).round() / 4.0, (p.z * 4.0).round() / 4.0))
            .collect();
        let queries = &points[..40];
        let brute = BruteForce::new(&points);
        let mut expected = Neighborhoods::new();
        brute.knn_batch(queries, k, &mut expected);
        let backends: Vec<(&str, Box<dyn NeighborSearch>)> = vec![
            ("kdtree", Box::new(KdTree::build(&points))),
            ("octree", Box::new(TwoLayerOctree::build(&points))),
            ("voxelgrid", Box::new(volut::pointcloud::voxelgrid::VoxelGrid::build(&points, 0.5))),
        ];
        for (name, backend) in &backends {
            let mut batch = Neighborhoods::new();
            backend.knn_batch(queries, k, &mut batch);
            prop_assert_eq!(&batch, &expected, "{} disagrees with brute force", name);
        }
    }

    #[test]
    fn knn_batch_parity_on_degenerate_clouds(
        shape in 0usize..4,
        n in 20usize..300,
        k in 1usize..10,
        seed in 0u64..100,
    ) {
        // Degenerate geometry stresses the SoA-leaf layout and the shared
        // distance kernel where ties and zero extents are the rule, not the
        // exception: all-identical points, a collinear cloud, a planar grid
        // (massive exact ties) and a sparse alternating-sign spread (kept
        // moderate — dozens of voxels, not millions — so the voxel ring
        // search stays off its exhaustive-scan bail-out in debug builds).
        // Batched rows must still equal the per-query path bit-for-bit on
        // every backend, under both the SIMD and scalar kernels (CI runs
        // this suite with the `simd` feature on and off).
        let points: Vec<Point3> = match shape {
            0 => vec![Point3::splat(seed as f32 * 0.25); n],
            1 => (0..n).map(|i| Point3::new((i / 3) as f32, 0.0, 0.0)).collect(),
            2 => (0..n)
                .map(|i| Point3::new((i % 7) as f32, (i / 7) as f32, 0.0))
                .collect(),
            _ => (0..n)
                .map(|i| Point3::splat(if i % 2 == 0 { 0.5 } else { -0.5 } * (i as f32)))
                .collect(),
        };
        let queries: Vec<Point3> = points.iter().copied().step_by(3).collect();
        let backends: Vec<(&str, Box<dyn NeighborSearch>)> = vec![
            ("brute", Box::new(BruteForce::new(&points))),
            ("kdtree", Box::new(KdTree::build(&points))),
            ("octree", Box::new(TwoLayerOctree::build(&points))),
            ("voxelgrid", Box::new(volut::pointcloud::voxelgrid::VoxelGrid::build(&points, 2.0))),
        ];
        for (name, backend) in &backends {
            let mut batch = Neighborhoods::new();
            backend.knn_batch(&queries, k, &mut batch);
            prop_assert_eq!(batch.len(), queries.len(), "{}: one row per query", name);
            for (i, &q) in queries.iter().enumerate() {
                let expected: Vec<u32> =
                    backend.knn(q, k).iter().map(|n| n.index as u32).collect();
                prop_assert_eq!(batch.row(i), expected.as_slice(), "{} query {}", name, i);
            }
        }
    }

    #[test]
    fn mlp_forward_batch_is_bit_identical_to_per_point(
        hidden in 1usize..48,
        n in 0usize..80,
        seed in 0u64..1000,
    ) {
        use volut::core::nn::mlp::{BatchScratch, ForwardScratch, Mlp};
        let mlp = Mlp::new(&[6, hidden, 3], seed);
        let inputs: Vec<f32> = (0..n * 6)
            .map(|i| ((i as f32) * 0.61 + seed as f32).sin() * 3.0 - 1.0)
            .collect();
        let mut batched = Vec::new();
        mlp.forward_batch_into(&inputs, n, &mut batched, &mut BatchScratch::default());
        prop_assert_eq!(batched.len(), n * 3);
        let mut fwd = ForwardScratch::default();
        for p in 0..n {
            let single = mlp.forward_into(&inputs[p * 6..(p + 1) * 6], &mut fwd);
            // Exact f32 equality — the contract the batched refiners and
            // the NN baselines rely on.
            prop_assert_eq!(&batched[p * 3..(p + 1) * 3], single, "point {}", p);
        }
    }

    #[test]
    fn chamfer_distance_is_symmetric_and_nonnegative(
        a_n in 50usize..300,
        b_n in 50usize..300,
        seed in 0u64..100,
    ) {
        let a = synthetic::sphere(a_n, 1.0, seed);
        let b = synthetic::torus(b_n, 1.0, 0.3, seed + 1);
        let ab = metrics::chamfer_distance(&a, &b);
        let ba = metrics::chamfer_distance(&b, &a);
        prop_assert!(ab >= 0.0);
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert_eq!(metrics::chamfer_distance(&a, &a), 0.0);
    }

    #[test]
    fn dilated_interpolation_always_hits_requested_ratio(
        n in 100usize..600,
        ratio in 1.0f64..5.0,
        seed in 0u64..50,
    ) {
        let low = synthetic::humanoid(n, seed as f32 * 0.1, seed);
        let out = dilated_interpolate(&low, &SrConfig::default(), ratio).unwrap();
        let target = (n as f64 * ratio).round() as usize;
        prop_assert_eq!(out.cloud.len(), target);
        // Parent indices always refer to the original cloud.
        prop_assert!(out.parents.iter().all(|&(a, b)| a < n && b < n));
        // New points carry colors because the input was colored.
        prop_assert!(out.cloud.has_colors());
    }

    #[test]
    fn normalize_unit_cube_really_bounds_the_cloud(
        points in prop::collection::vec(arb_point(), 2..200),
    ) {
        let mut cloud = PointCloud::from_positions(points);
        cloud.normalize_unit_cube().unwrap();
        let bounds = cloud.bounds().unwrap();
        prop_assert!(bounds.min.min_element() >= -1.0 - 1e-4);
        prop_assert!(bounds.max.max_element() <= 1.0 + 1e-4);
    }

    #[test]
    fn neighborhoods_csr_invariants_and_roundtrip(
        rows in prop::collection::vec(prop::collection::vec(0usize..5000, 0..9), 0..60),
    ) {
        let csr = Neighborhoods::from_nested(&rows);
        // Shape invariants.
        prop_assert_eq!(csr.len(), rows.len());
        let offsets = csr.offsets();
        prop_assert_eq!(offsets.len(), rows.len() + 1);
        prop_assert_eq!(offsets[0], 0u32);
        prop_assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "offsets must be monotone");
        prop_assert_eq!(*offsets.last().unwrap() as usize, csr.indices().len());
        prop_assert_eq!(csr.total_indices(), rows.iter().map(Vec::len).sum::<usize>());
        // Per-row agreement and nested round-trip.
        for (i, row) in rows.iter().enumerate() {
            let got: Vec<usize> = csr.row(i).iter().map(|&v| v as usize).collect();
            prop_assert_eq!(&got, row, "row {}", i);
        }
        prop_assert_eq!(csr.to_nested(), rows.clone());
        // Sliced views agree with the owner on every sub-range boundary.
        if !rows.is_empty() {
            let mid = rows.len() / 2;
            let tail = csr.view().slice_rows(mid, rows.len());
            for (k, row) in rows[mid..].iter().enumerate() {
                let got: Vec<usize> = tail.row(k).iter().map(|&v| v as usize).collect();
                prop_assert_eq!(&got, row, "sliced row {}", k);
            }
        }
        // Append after a round-trip preserves every original row.
        let mut doubled = csr.clone();
        doubled.append(&csr);
        prop_assert_eq!(doubled.len(), rows.len() * 2);
        prop_assert_eq!(doubled.total_indices(), csr.total_indices() * 2);
    }
}

//! Integration tests spanning the point-cloud substrate and the SR core:
//! the full offline (train → distill → save → load) and online
//! (downsample → interpolate → refine) paths.

use volut::core::encoding::KeyScheme;
use volut::core::lut::builder::LutBuilder;
use volut::core::lut::io::{read_lut, write_sparse, LutHeader};
use volut::core::lut::Lut as _;
use volut::core::nn::train::{build_training_set, RefinementTrainer, TrainConfig};
use volut::core::refine::{IdentityRefiner, LutRefiner};
use volut::core::{SrConfig, SrPipeline};
use volut::pointcloud::{metrics, sampling, synthetic};

/// Configuration used by these tests: the sparse LUT generalizes across
/// content through coarser quantization (the paper's b = 128 setting is tied
/// to the dense compact-key table analyzed in Table 1).
fn test_config() -> SrConfig {
    SrConfig {
        bins: 16,
        ..SrConfig::default()
    }
}

/// Trains a small LUT once for the tests in this file.
fn train_lut(config: &SrConfig) -> volut::core::lut::sparse::SparseLut {
    let gt = synthetic::humanoid(4_000, 0.2, 3);
    let set = build_training_set(&gt, 0.5, config, KeyScheme::Full, 5).unwrap();
    let mut trainer = RefinementTrainer::new(
        config,
        TrainConfig {
            epochs: 4,
            ..TrainConfig::default()
        },
    )
    .unwrap();
    trainer.train(&set).unwrap();
    LutBuilder::new(config, KeyScheme::Full)
        .unwrap()
        .distill_sparse(&trainer.into_network(), &set)
        .unwrap()
}

#[test]
fn offline_to_online_roundtrip_through_disk() {
    let config = test_config();
    let lut = train_lut(&config);
    assert!(lut.populated() > 100);

    // Persist and reload the LUT like a deployment would.
    let dir = std::env::temp_dir().join("volut_integration_lut");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.vlut");
    let header = LutHeader {
        scheme: KeyScheme::Full,
        receptive_field: config.receptive_field,
        bins: config.bins,
    };
    write_sparse(&lut, header, &path).unwrap();
    let loaded = read_lut(&path).unwrap();
    assert_eq!(loaded.as_lut().populated(), lut.populated());
    std::fs::remove_file(&path).ok();

    // Use the reloaded LUT for SR on unseen content.
    let refiner =
        LutRefiner::from_config(&config, loaded.header().scheme, loaded.into_boxed_lut()).unwrap();
    let pipeline = SrPipeline::new(config, Box::new(refiner));
    let unseen = synthetic::humanoid(5_000, 1.5, 77);
    let low = sampling::random_downsample(&unseen, 0.5, 9).unwrap();
    let result = pipeline.upsample(&low, 2.0).unwrap();
    assert_eq!(result.cloud.len(), 2 * low.len());
    assert!(result.cloud.has_colors());
    // The LUT must actually be consulted on in-distribution content.
    let stats = result.lookup_stats.unwrap();
    assert!(stats.hits > 0, "expected lut hits, got {stats:?}");
    // Quality: coverage of the ground truth improves versus the received cloud.
    assert!(
        metrics::one_sided_chamfer(&unseen, &result.cloud)
            < metrics::one_sided_chamfer(&unseen, &low)
    );
}

#[test]
fn continuous_ratios_are_supported_end_to_end() {
    let config = SrConfig::default();
    let pipeline = SrPipeline::new(config, Box::new(IdentityRefiner));
    let gt = synthetic::torus(3_000, 1.0, 0.3, 11);
    let low = sampling::random_downsample_exact(&gt, 1_000, 1).unwrap();
    for ratio in [1.3, 2.0, 2.7, 3.5, 5.25] {
        let out = pipeline.upsample(&low, ratio).unwrap();
        let achieved = out.cloud.len() as f64 / low.len() as f64;
        assert!(
            (achieved - ratio).abs() < 0.01,
            "requested {ratio}, achieved {achieved}"
        );
    }
}

#[test]
fn lut_refinement_does_not_degrade_interpolation_quality() {
    let config = test_config();
    let lut = train_lut(&config);
    let gt = synthetic::humanoid(4_000, 0.6, 21);
    let low = sampling::random_downsample(&gt, 0.5, 13).unwrap();

    let lut_pipeline = SrPipeline::new(
        config,
        Box::new(LutRefiner::from_config(&config, KeyScheme::Full, Box::new(lut)).unwrap()),
    );
    let id_pipeline = SrPipeline::new(config, Box::new(IdentityRefiner));

    let refined = lut_pipeline.upsample(&low, 2.0).unwrap();
    let unrefined = id_pipeline.upsample(&low, 2.0).unwrap();
    let cd_refined = metrics::chamfer_distance(&refined.cloud, &gt);
    let cd_unrefined = metrics::chamfer_distance(&unrefined.cloud, &gt);
    assert!(
        cd_refined <= cd_unrefined * 1.1,
        "refined {cd_refined} should not be much worse than unrefined {cd_unrefined}"
    );
}
